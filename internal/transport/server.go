// Package transport implements Swiftest's probing protocol over real UDP
// sockets: a test server that paces probe datagrams at a client-controlled
// rate, and a client probe that plugs into the core engine (core.Probe).
//
// This is the deployable counterpart of the virtual-time SimProbe: the same
// engine logic (package core) drives both, so experiments validated on the
// emulator carry over to the wire. The server is intentionally cheap — a
// batched read loop plus one pacing-wheel goroutine shared by every active
// test — matching the paper's point that Swiftest runs on small 100 Mbps
// budget VMs (§5.2/§5.3). The wire hot path is built on package batchio:
// many datagrams per syscall (sendmmsg plus UDP segmentation offload where
// the kernel has them) and pooled zero-allocation buffers, with a portable
// one-datagram-per-syscall fallback that emits byte-identical traffic.
//
//lint:allow walltime deployment-side package paced against real sockets; the virtual-time counterpart is core+linksim
package transport

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mobilebandwidth/swiftest/internal/faults"
	"github.com/mobilebandwidth/swiftest/internal/obs"
	"github.com/mobilebandwidth/swiftest/internal/transport/batchio"
	"github.com/mobilebandwidth/swiftest/internal/wire"
)

// DatagramSize is the probe datagram size (header + padding). Chosen below
// common MTUs to avoid fragmentation.
const DatagramSize = 1200

// paceInterval is the pacing quantum: each interval the wheel emits the
// bytes corresponding to every session's current probing rate.
const paceInterval = 5 * time.Millisecond

// DefaultIdleTimeout reaps sessions whose client vanished without Fin.
const DefaultIdleTimeout = 10 * time.Second

// recvBatch is how many datagrams the server's read loop accepts per
// syscall on the batched path.
const recvBatch = 16

// WireMode selects the send/receive syscall strategy for a server or probe.
type WireMode int

const (
	// WireAuto uses vectored syscalls and UDP segmentation offload where the
	// platform has them, falling back automatically elsewhere.
	WireAuto WireMode = iota
	// WireFallback forces the portable one-datagram-per-syscall path. The
	// wire traffic is byte-identical to WireAuto — only the syscall count
	// differs — which the batched-vs-fallback property test pins.
	WireFallback
)

// ServerConfig configures a test server.
type ServerConfig struct {
	// UplinkMbps is the server's egress capacity; aggregate pacing across
	// sessions is capped at this rate, mirroring the budget-server pools of
	// §5.2. Zero means 100 Mbps.
	UplinkMbps float64
	// Logger receives operational events; nil disables logging.
	Logger *slog.Logger
	// OnResult, if non-nil, is invoked with each client-reported test
	// result (Mbps) — the feed for periodic bandwidth-model refresh (§5.1).
	OnResult func(mbps float64)
	// IdleTimeout reaps sessions whose client vanished without a Fin; zero
	// selects DefaultIdleTimeout.
	IdleTimeout time.Duration
	// Metrics, when non-nil, receives the server's operational metrics
	// (session lifecycle, pacing, drops, reaps) for Prometheus exposition.
	Metrics *obs.Registry
	// Faults, when non-nil, makes the server act out a fault plan: drop
	// handshakes, fall silent during blackouts, delay or duplicate pongs,
	// lose probe datagrams, clamp pacing. Fault times are elapsed since
	// NewServer. Nil injects nothing; the hooks cost one nil check each.
	Faults *faults.Binding
	// Wire selects the syscall strategy; the zero value (WireAuto) is right
	// for deployments, WireFallback exists for equivalence testing and
	// debugging.
	Wire WireMode
	// AuthKey, when non-zero, requires every protocol-v2 session setup to
	// carry a token minted under this key by the fleet dispatcher
	// (wire.MintToken); setups with absent or forged tokens are rejected
	// with wire.RejectAuth and counted in
	// swiftest_server_auth_rejects_total. Protocol-v1 clients predate the
	// token exchange and are admitted regardless — the fallback path stays
	// open so legacy clients keep working during a fleet upgrade.
	AuthKey uint64
	// startedAt, when non-zero, pins the server's epoch — the base for
	// fault-plan times and datagram timestamps. Test-only (unexported):
	// scripted wheel schedules set it before the read loop starts so the
	// override never races a live packet.
	startedAt time.Time
	// v1Only, when true, drops every v2 frame so the server behaves like a
	// legacy deployment. Test-only (unexported): exercises the client's
	// negotiated fallback without building an old binary.
	v1Only bool
}

// Server is a Swiftest UDP test server.
type Server struct {
	conn    *net.UDPConn
	bio     batchio.Conn
	gso     bool // kernel splits super-buffers into DatagramSize segments
	pool    *bufPool
	cfg     ServerConfig
	wg      sync.WaitGroup
	closed  atomic.Bool
	metrics serverMetrics
	started time.Time

	wheelStop chan struct{}

	mu         sync.Mutex
	sessions   map[sessionKey]*session // guarded by mu
	byID       map[uint64]*session     // v2 sessions by session ID; guarded by mu
	helloCaps  map[string]uint32       // per-address negotiated caps from the last Hello; guarded by mu
	order      []*session              // registration order, for deterministic wheel iteration; guarded by mu
	hsAttempts map[sessionKey]int      // handshake datagrams seen per key, for fault draws; guarded by mu

	// Wheel-goroutine scratch, reused every tick so the steady state runs at
	// 0 allocs/packet.
	active  []*session
	msgs    []batchio.Message
	msgBufs []*pktBuf
	bufs    []*pktBuf

	// ctl is the read loop's single-message scratch for control replies.
	ctl [1]batchio.Message

	bytesSent atomic.Int64
}

type sessionKey struct {
	addr   string
	testID uint64
}

type session struct {
	key    sessionKey
	testID uint64
	// peer is the address probe datagrams are paced to. v1 sessions set it
	// at creation; v2 sessions publish with nil and store the data-channel
	// address when the client's DataOpen arrives, hence the atomic — the
	// wheel skips the session until the pointer lands.
	peer     atomic.Pointer[net.UDPAddr]
	rateKbps atomic.Uint32
	rateSeq  atomic.Uint32
	lastSeen atomic.Int64 // unix nanos
	retired  atomic.Bool  // exactly-once wheel deregistration

	// Protocol v2 identity, immutable after creation.
	v2       bool
	id       uint64       // v2 session ID (key.testID carries it too)
	caps     uint32       // active capability set
	ctrlPeer *net.UDPAddr // control-channel address (reports, acks)

	// Pacing state, owned by the wheel goroutine after publication.
	seq        uint32
	carryBytes float64
	lastTick   time.Time
	// Per-interval report state, wheel-owned: cumulative paced traffic and
	// the cadence cursor for CapReports.
	sentBytes     uint64
	sentDatagrams uint32
	reportSeq     uint32
	lastReport    time.Time
}

// NewServer starts a server on addr (e.g. "127.0.0.1:0"). Close releases it.
//
//lint:allow ctxflow the read loop's lifetime is bounded by Close, the standard lifecycle for long-lived servers
func NewServer(addr string, cfg ServerConfig) (*Server, error) {
	return newServer(addr, cfg, true)
}

// newServer is NewServer with the pacing wheel optionally left unstarted, so
// deterministic tests can drive advance with a scripted clock.
//
//lint:allow ctxflow the read loop's lifetime is bounded by Close, the standard lifecycle for long-lived servers
func newServer(addr string, cfg ServerConfig, startWheel bool) (*Server, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolving %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listening on %q: %w", addr, err)
	}
	if cfg.UplinkMbps <= 0 {
		cfg.UplinkMbps = 100
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	mode := batchio.ModeAuto
	if cfg.Wire == WireFallback {
		mode = batchio.ModeFallback
	}
	s := &Server{
		conn:       conn,
		bio:        batchio.New(conn, mode),
		pool:       newBufPool(segsPerBuf*DatagramSize, 4),
		cfg:        cfg,
		sessions:   make(map[sessionKey]*session),
		byID:       make(map[uint64]*session),
		helloCaps:  make(map[string]uint32),
		hsAttempts: make(map[sessionKey]int),
		started:    time.Now(),
		wheelStop:  make(chan struct{}),
	}
	if !cfg.startedAt.IsZero() {
		s.started = cfg.startedAt
	}
	if cfg.Wire == WireAuto && batchio.Batched(s.bio) &&
		batchio.MaxSegments(DatagramSize) >= segsPerBuf {
		s.gso = batchio.SetSegmentSize(conn, DatagramSize) == nil
	}
	s.metrics = newServerMetrics(cfg.Metrics)
	s.metrics.uplinkMbps.Set(cfg.UplinkMbps)
	s.wg.Add(1)
	go s.readLoop()
	if startWheel {
		s.wg.Add(1)
		go s.wheelLoop()
	}
	return s, nil
}

// Addr reports the server's bound UDP address.
func (s *Server) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// BytesSent reports cumulative probe bytes sent, for utilization accounting.
func (s *Server) BytesSent() int64 { return s.bytesSent.Load() }

// ActiveSessions reports the number of in-flight tests.
func (s *Server) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Close stops the server and retires all sessions.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	close(s.wheelStop)
	err := s.conn.Close()
	s.mu.Lock()
	live := append([]*session(nil), s.order...)
	s.mu.Unlock()
	for _, sess := range live {
		s.retire(sess)
	}
	s.wg.Wait()
	return err
}

func (s *Server) logf(msg string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info(msg, args...)
	}
}

// elapsed is the fault plan's time base: wall time since the server started.
func (s *Server) elapsed() time.Duration { return time.Since(s.started) }

// BlackedOut reports whether the server's fault plan has it blacked out
// right now. The fleet heartbeat loop (cmd/swiftest serve -register) gates
// beats on this, so an injected blackout silences the control plane exactly
// when it silences the data plane and the dispatcher's K-silent-windows rule
// marks the server dead — the same detector, both worlds.
func (s *Server) BlackedOut() bool { return s.cfg.Faults.Blackout(s.elapsed()) }

// cloneUDPAddr copies a peer address out of reused receive-batch storage so
// it can be stored or used after the read loop recycles the batch.
func cloneUDPAddr(a *net.UDPAddr) *net.UDPAddr {
	return &net.UDPAddr{IP: append(net.IP(nil), a.IP...), Port: a.Port, Zone: a.Zone}
}

func (s *Server) readLoop() {
	defer s.wg.Done()
	msgs := make([]batchio.Message, recvBatch)
	for i := range msgs {
		msgs[i].Buf = make([]byte, 2048)
		msgs[i].Addr = &net.UDPAddr{IP: make(net.IP, 16)}
	}
	out := make([]byte, 0, 64)
	for {
		n, err := s.bio.RecvBatch(msgs)
		if err != nil {
			if s.closed.Load() {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		for i := 0; i < n; i++ {
			out = s.handlePacket(msgs[i].Buf[:msgs[i].N], msgs[i].Addr, out)
		}
	}
}

// handlePacket dispatches one inbound datagram. peer points into reused
// batch storage: handlers that keep it beyond this call clone it. out is the
// reply scratch buffer, returned so the read loop can keep reusing it.
func (s *Server) handlePacket(pkt []byte, peer *net.UDPAddr, out []byte) []byte {
	ver, typ, err := wire.PeekVersion(pkt)
	if err != nil {
		return out // not ours; drop silently
	}
	if s.cfg.Faults.Blackout(s.elapsed()) {
		// A blacked-out server is dead to the world: every inbound
		// datagram vanishes, exactly like a crashed process.
		s.metrics.faultsInjected.Inc()
		return out
	}
	if ver == wire.Version2 {
		if s.cfg.v1Only {
			return out // legacy server: v2 frames mean nothing, negotiation times out
		}
		return s.handleV2(typ, pkt, peer, out[:0])
	}
	out = out[:0]
	switch typ {
	case wire.TypePing:
		var ping wire.Ping
		if ping.Decode(pkt) == nil {
			s.metrics.pings.Inc()
			pong := wire.Pong{Seq: ping.Seq, EchoNS: ping.SentNS}
			out = pong.AppendTo(out)
			s.sendPong(out, peer)
		}
	case wire.TypeTestRequest:
		var req wire.TestRequest
		if req.Decode(pkt) == nil {
			if s.dropHandshake(&req, peer) {
				s.metrics.faultsInjected.Inc()
				return out
			}
			s.handleTestRequest(&req, peer)
			acc := wire.TestAccept{TestID: req.TestID}
			out = acc.AppendTo(out)
			s.sendControl(out, peer)
		}
	case wire.TypeRateSet:
		var rs wire.RateSet
		if rs.Decode(pkt) == nil {
			s.handleRateSet(&rs, peer)
		}
	case wire.TypeFin:
		var fin wire.Fin
		if fin.Decode(pkt) == nil {
			s.handleFin(&fin, peer)
			ack := wire.FinAck{TestID: fin.TestID}
			out = ack.AppendTo(out)
			s.sendControl(out, peer)
		}
	}
	return out
}

// sendControl routes one control datagram through the batch sender, the
// single code path for every server wire send: a failed write increments
// send-errors instead of vanishing. Control messages are shorter than the
// offload segment size, so an offload-enabled socket sends them unchanged.
// Read-loop goroutine only (it reuses the ctl scratch).
func (s *Server) sendControl(out []byte, peer *net.UDPAddr) {
	s.ctl[0] = batchio.Message{Buf: out, Addr: peer}
	if _, err := s.bio.SendBatch(s.ctl[:]); err != nil && !s.closed.Load() {
		s.metrics.sendErrors.Inc()
	}
}

// sendPong writes a pong, applying any active pong-delay / pong-dup fault.
// The fast path (no fault plan) is one nil check and a direct batched write.
func (s *Server) sendPong(out []byte, peer *net.UDPAddr) {
	act := s.cfg.Faults.Pong(s.elapsed())
	if act.Drop {
		s.metrics.faultsInjected.Inc()
		return
	}
	if act.Delay <= 0 && act.Copies <= 1 {
		s.sendControl(out, peer)
		return
	}
	s.metrics.faultsInjected.Inc()
	// out and peer are reused by the read loop; the delayed send needs
	// copies of both.
	msg := []batchio.Message{{Buf: append([]byte(nil), out...), Addr: cloneUDPAddr(peer)}}
	send := func() {
		for i := 0; i < act.Copies; i++ {
			if _, err := s.bio.SendBatch(msg); err != nil && !s.closed.Load() {
				s.metrics.sendErrors.Inc()
			}
		}
	}
	if act.Delay > 0 {
		time.AfterFunc(act.Delay, send)
		return
	}
	send()
}

// dropHandshake consults the fault plan for one TestRequest datagram,
// numbering retransmissions per (peer, test) so probabilistic drops re-draw
// per attempt.
func (s *Server) dropHandshake(req *wire.TestRequest, peer *net.UDPAddr) bool {
	if s.cfg.Faults == nil {
		return false
	}
	key := sessionKey{addr: peer.String(), testID: req.TestID}
	s.mu.Lock()
	attempt := s.hsAttempts[key]
	s.hsAttempts[key] = attempt + 1
	s.mu.Unlock()
	return s.cfg.Faults.DropHandshake(s.elapsed(), attempt)
}

func (s *Server) handleTestRequest(req *wire.TestRequest, peer *net.UDPAddr) {
	key := sessionKey{addr: peer.String(), testID: req.TestID}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.sessions[key]; exists {
		return // duplicate request (client retransmit); already running
	}
	sess := &session{key: key, testID: req.TestID}
	sess.peer.Store(cloneUDPAddr(peer))
	granted := s.clampRateLocked(req.RateKbps, nil)
	if granted < req.RateKbps {
		s.metrics.rateClamped.Inc()
	}
	sess.rateKbps.Store(granted)
	sess.lastSeen.Store(time.Now().UnixNano())
	s.sessions[key] = sess
	s.order = append(s.order, sess)
	s.metrics.sessionsStarted.Inc()
	s.metrics.sessionsActive.Inc()
	s.updatePacedGaugeLocked()
	s.logf("test started", "peer", peer.String(), "test_id", req.TestID,
		"rate_mbps", wire.MbpsFromKbps(req.RateKbps))
}

// clampRateLocked limits a session's rate so that the aggregate across all
// sessions stays within the server uplink. except, when non-nil, is the
// session whose rate is being replaced and is left out of the in-use sum.
// Callers hold s.mu.
func (s *Server) clampRateLocked(kbps uint32, except *session) uint32 {
	var inUse float64
	for _, sess := range s.sessions {
		if sess == except {
			continue
		}
		inUse += wire.MbpsFromKbps(sess.rateKbps.Load())
	}
	free := s.cfg.UplinkMbps - inUse
	if free <= 0 {
		return 0
	}
	if want := wire.MbpsFromKbps(kbps); want > free {
		return wire.KbpsFromMbps(free)
	}
	return kbps
}

func (s *Server) handleRateSet(rs *wire.RateSet, peer *net.UDPAddr) {
	key := sessionKey{addr: peer.String(), testID: rs.TestID}
	s.mu.Lock()
	sess := s.sessions[key]
	s.mu.Unlock()
	if sess == nil {
		return
	}
	s.applyRate(sess, rs.RateKbps, rs.Seq)
}

func (s *Server) handleFin(fin *wire.Fin, peer *net.UDPAddr) {
	key := sessionKey{addr: peer.String(), testID: fin.TestID}
	s.mu.Lock()
	sess := s.sessions[key]
	s.mu.Unlock()
	if sess == nil || !s.retire(sess) {
		return // unknown or already retired: still FinAck'd by the caller
	}
	s.metrics.sessionsFinished.Inc()
	s.metrics.resultMbps.Observe(wire.MbpsFromKbps(fin.ResultKbps))
	if s.cfg.OnResult != nil {
		s.cfg.OnResult(wire.MbpsFromKbps(fin.ResultKbps))
	}
	s.logf("test finished", "peer", peer.String(), "test_id", fin.TestID,
		"result_mbps", wire.MbpsFromKbps(fin.ResultKbps))
}
