// Package transport implements Swiftest's probing protocol over real UDP
// sockets: a test server that paces probe datagrams at a client-controlled
// rate, and a client probe that plugs into the core engine (core.Probe).
//
// This is the deployable counterpart of the virtual-time SimProbe: the same
// engine logic (package core) drives both, so experiments validated on the
// emulator carry over to the wire. The server is intentionally cheap — a
// read loop plus one pacing goroutine per active test — matching the paper's
// point that Swiftest runs on small 100 Mbps budget VMs (§5.2/§5.3).
//
//lint:allow walltime deployment-side package paced against real sockets; the virtual-time counterpart is core+linksim
package transport

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mobilebandwidth/swiftest/internal/faults"
	"github.com/mobilebandwidth/swiftest/internal/obs"
	"github.com/mobilebandwidth/swiftest/internal/wire"
)

// DatagramSize is the probe datagram size (header + padding). Chosen below
// common MTUs to avoid fragmentation.
const DatagramSize = 1200

// paceInterval is the pacing quantum: each interval the pacer emits the
// bytes corresponding to the current probing rate.
const paceInterval = 5 * time.Millisecond

// DefaultIdleTimeout reaps sessions whose client vanished without Fin.
const DefaultIdleTimeout = 10 * time.Second

// ServerConfig configures a test server.
type ServerConfig struct {
	// UplinkMbps is the server's egress capacity; aggregate pacing across
	// sessions is capped at this rate, mirroring the budget-server pools of
	// §5.2. Zero means 100 Mbps.
	UplinkMbps float64
	// Logger receives operational events; nil disables logging.
	Logger *slog.Logger
	// OnResult, if non-nil, is invoked with each client-reported test
	// result (Mbps) — the feed for periodic bandwidth-model refresh (§5.1).
	OnResult func(mbps float64)
	// IdleTimeout reaps sessions whose client vanished without a Fin; zero
	// selects DefaultIdleTimeout.
	IdleTimeout time.Duration
	// Metrics, when non-nil, receives the server's operational metrics
	// (session lifecycle, pacing, drops, reaps) for Prometheus exposition.
	Metrics *obs.Registry
	// Faults, when non-nil, makes the server act out a fault plan: drop
	// handshakes, fall silent during blackouts, delay or duplicate pongs,
	// lose probe datagrams, clamp pacing. Fault times are elapsed since
	// NewServer. Nil injects nothing; the hooks cost one nil check each.
	Faults *faults.Binding
}

// Server is a Swiftest UDP test server.
type Server struct {
	conn    *net.UDPConn
	cfg     ServerConfig
	wg      sync.WaitGroup
	closed  atomic.Bool
	metrics serverMetrics
	started time.Time

	mu         sync.Mutex
	sessions   map[sessionKey]*session // guarded by mu
	hsAttempts map[sessionKey]int      // handshake datagrams seen per key, for fault draws; guarded by mu

	bytesSent atomic.Int64
}

type sessionKey struct {
	addr   string
	testID uint64
}

type session struct {
	testID   uint64
	peer     *net.UDPAddr
	rateKbps atomic.Uint32
	rateSeq  atomic.Uint32
	lastSeen atomic.Int64 // unix nanos
	stop     chan struct{}
	stopOnce sync.Once
}

// NewServer starts a server on addr (e.g. "127.0.0.1:0"). Close releases it.
//
//lint:allow ctxflow the read loop's lifetime is bounded by Close, the standard lifecycle for long-lived servers
func NewServer(addr string, cfg ServerConfig) (*Server, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolving %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listening on %q: %w", addr, err)
	}
	if cfg.UplinkMbps <= 0 {
		cfg.UplinkMbps = 100
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	s := &Server{
		conn:       conn,
		cfg:        cfg,
		sessions:   make(map[sessionKey]*session),
		hsAttempts: make(map[sessionKey]int),
		started:    time.Now(),
	}
	s.metrics = newServerMetrics(cfg.Metrics)
	s.metrics.uplinkMbps.Set(cfg.UplinkMbps)
	s.wg.Add(1)
	go s.readLoop()
	return s, nil
}

// Addr reports the server's bound UDP address.
func (s *Server) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// BytesSent reports cumulative probe bytes sent, for utilization accounting.
func (s *Server) BytesSent() int64 { return s.bytesSent.Load() }

// ActiveSessions reports the number of in-flight tests.
func (s *Server) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Close stops the server and all sessions.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	err := s.conn.Close()
	s.mu.Lock()
	for _, sess := range s.sessions {
		sess.shutdown()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) logf(msg string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info(msg, args...)
	}
}

// elapsed is the fault plan's time base: wall time since the server started.
func (s *Server) elapsed() time.Duration { return time.Since(s.started) }

// BlackedOut reports whether the server's fault plan has it blacked out
// right now. The fleet heartbeat loop (cmd/swiftest serve -register) gates
// beats on this, so an injected blackout silences the control plane exactly
// when it silences the data plane and the dispatcher's K-silent-windows rule
// marks the server dead — the same detector, both worlds.
func (s *Server) BlackedOut() bool { return s.cfg.Faults.Blackout(s.elapsed()) }

func (s *Server) readLoop() {
	defer s.wg.Done()
	buf := make([]byte, 2048)
	out := make([]byte, 0, 64)
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			if s.closed.Load() {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		pkt := buf[:n]
		typ, err := wire.PeekType(pkt)
		if err != nil {
			continue // not ours; drop silently
		}
		if s.cfg.Faults.Blackout(s.elapsed()) {
			// A blacked-out server is dead to the world: every inbound
			// datagram vanishes, exactly like a crashed process.
			s.metrics.faultsInjected.Inc()
			continue
		}
		out = out[:0]
		switch typ {
		case wire.TypePing:
			var ping wire.Ping
			if ping.Decode(pkt) == nil {
				s.metrics.pings.Inc()
				pong := wire.Pong{Seq: ping.Seq, EchoNS: ping.SentNS}
				out = pong.AppendTo(out)
				s.sendPong(out, peer)
			}
		case wire.TypeTestRequest:
			var req wire.TestRequest
			if req.Decode(pkt) == nil {
				if s.dropHandshake(&req, peer) {
					s.metrics.faultsInjected.Inc()
					continue
				}
				s.handleTestRequest(&req, peer)
				acc := wire.TestAccept{TestID: req.TestID}
				out = acc.AppendTo(out)
				_, _ = s.conn.WriteToUDP(out, peer)
			}
		case wire.TypeRateSet:
			var rs wire.RateSet
			if rs.Decode(pkt) == nil {
				s.handleRateSet(&rs, peer)
			}
		case wire.TypeFin:
			var fin wire.Fin
			if fin.Decode(pkt) == nil {
				s.handleFin(&fin, peer)
				ack := wire.FinAck{TestID: fin.TestID}
				out = ack.AppendTo(out)
				_, _ = s.conn.WriteToUDP(out, peer)
			}
		}
	}
}

// sendPong writes a pong, applying any active pong-delay / pong-dup fault.
// The fast path (no fault plan) is one nil check and a direct write.
func (s *Server) sendPong(out []byte, peer *net.UDPAddr) {
	act := s.cfg.Faults.Pong(s.elapsed())
	if act.Drop {
		s.metrics.faultsInjected.Inc()
		return
	}
	if act.Delay <= 0 && act.Copies <= 1 {
		_, _ = s.conn.WriteToUDP(out, peer)
		return
	}
	s.metrics.faultsInjected.Inc()
	pong := append([]byte(nil), out...) // out is reused by the read loop
	send := func() {
		for i := 0; i < act.Copies; i++ {
			_, _ = s.conn.WriteToUDP(pong, peer)
		}
	}
	if act.Delay > 0 {
		time.AfterFunc(act.Delay, send)
		return
	}
	send()
}

// dropHandshake consults the fault plan for one TestRequest datagram,
// numbering retransmissions per (peer, test) so probabilistic drops re-draw
// per attempt.
func (s *Server) dropHandshake(req *wire.TestRequest, peer *net.UDPAddr) bool {
	if s.cfg.Faults == nil {
		return false
	}
	key := sessionKey{addr: peer.String(), testID: req.TestID}
	s.mu.Lock()
	attempt := s.hsAttempts[key]
	s.hsAttempts[key] = attempt + 1
	s.mu.Unlock()
	return s.cfg.Faults.DropHandshake(s.elapsed(), attempt)
}

func (s *Server) handleTestRequest(req *wire.TestRequest, peer *net.UDPAddr) {
	key := sessionKey{addr: peer.String(), testID: req.TestID}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.sessions[key]; exists {
		return // duplicate request (client retransmit); already running
	}
	sess := &session{testID: req.TestID, peer: peer, stop: make(chan struct{})}
	granted := s.clampRateLocked(req.RateKbps, nil)
	if granted < req.RateKbps {
		s.metrics.rateClamped.Inc()
	}
	sess.rateKbps.Store(granted)
	sess.lastSeen.Store(time.Now().UnixNano())
	s.sessions[key] = sess
	s.metrics.sessionsStarted.Inc()
	s.metrics.sessionsActive.Inc()
	s.updatePacedGaugeLocked()
	s.wg.Add(1)
	go s.pace(sess, key)
	s.logf("test started", "peer", peer.String(), "test_id", req.TestID,
		"rate_mbps", wire.MbpsFromKbps(req.RateKbps))
}

// clampRateLocked limits a session's rate so that the aggregate across all
// sessions stays within the server uplink. except, when non-nil, is the
// session whose rate is being replaced and is left out of the in-use sum.
// Callers hold s.mu.
func (s *Server) clampRateLocked(kbps uint32, except *session) uint32 {
	var inUse float64
	for _, sess := range s.sessions {
		if sess == except {
			continue
		}
		inUse += wire.MbpsFromKbps(sess.rateKbps.Load())
	}
	free := s.cfg.UplinkMbps - inUse
	if free <= 0 {
		return 0
	}
	if want := wire.MbpsFromKbps(kbps); want > free {
		return wire.KbpsFromMbps(free)
	}
	return kbps
}

func (s *Server) handleRateSet(rs *wire.RateSet, peer *net.UDPAddr) {
	key := sessionKey{addr: peer.String(), testID: rs.TestID}
	s.mu.Lock()
	sess := s.sessions[key]
	var clamped uint32
	if sess != nil {
		clamped = s.clampRateLocked(rs.RateKbps, sess)
	}
	s.mu.Unlock()
	if sess == nil {
		return
	}
	// Ignore stale (reordered) rate updates.
	for {
		cur := sess.rateSeq.Load()
		if rs.Seq <= cur && cur != 0 {
			return
		}
		if sess.rateSeq.CompareAndSwap(cur, rs.Seq) {
			break
		}
	}
	if clamped < rs.RateKbps {
		s.metrics.rateClamped.Inc()
	}
	sess.rateKbps.Store(clamped)
	sess.lastSeen.Store(time.Now().UnixNano())
	s.mu.Lock()
	s.updatePacedGaugeLocked()
	s.mu.Unlock()
}

func (s *Server) handleFin(fin *wire.Fin, peer *net.UDPAddr) {
	key := sessionKey{addr: peer.String(), testID: fin.TestID}
	s.mu.Lock()
	sess := s.sessions[key]
	delete(s.sessions, key)
	s.updatePacedGaugeLocked()
	s.mu.Unlock()
	if sess == nil {
		return
	}
	sess.shutdown()
	s.metrics.sessionsFinished.Inc()
	s.metrics.resultMbps.Observe(wire.MbpsFromKbps(fin.ResultKbps))
	if s.cfg.OnResult != nil {
		s.cfg.OnResult(wire.MbpsFromKbps(fin.ResultKbps))
	}
	s.logf("test finished", "peer", peer.String(), "test_id", fin.TestID,
		"result_mbps", wire.MbpsFromKbps(fin.ResultKbps))
}

func (sess *session) shutdown() { sess.stopOnce.Do(func() { close(sess.stop) }) }

// pace emits probe datagrams to the session peer at its current rate until
// the session stops or idles out.
func (s *Server) pace(sess *session, key sessionKey) {
	defer s.wg.Done()
	// Exactly-once teardown accounting: every session's pace goroutine exits
	// through this defer regardless of the Fin / idle-reap / Close path.
	defer func() {
		s.mu.Lock()
		delete(s.sessions, key)
		s.metrics.sessionsActive.Dec()
		s.updatePacedGaugeLocked()
		s.mu.Unlock()
	}()

	ticker := time.NewTicker(paceInterval)
	defer ticker.Stop()

	pkt := make([]byte, 0, DatagramSize)
	payload := make([]byte, DatagramSize-wire.DataHeaderLen)
	var seq uint32
	var carryBytes float64
	last := time.Now()

	for {
		select {
		case <-sess.stop:
			return
		case <-ticker.C:
		}
		now := time.Now()
		elapsed := now.Sub(last).Seconds()
		last = now
		if now.UnixNano()-sess.lastSeen.Load() > int64(s.cfg.IdleTimeout) {
			s.metrics.sessionsReaped.Inc()
			s.logf("session idle timeout", "peer", sess.peer.String(), "test_id", sess.testID)
			return
		}
		rate := wire.MbpsFromKbps(sess.rateKbps.Load())
		if b := s.cfg.Faults; b != nil {
			at := s.elapsed()
			if b.Blackout(at) {
				// A blacked-out server paces nothing — the client sees the
				// session fall silent and fails over.
				carryBytes = 0
				s.metrics.faultsInjected.Inc()
				continue
			}
			if capMbps, ok := b.CapMbps(at); ok && rate > capMbps {
				rate = capMbps
				s.metrics.faultsInjected.Inc()
			}
		}
		if rate <= 0 {
			carryBytes = 0
			continue
		}
		// Budget by measured elapsed time, not the nominal tick: the pacer
		// self-corrects against ticker jitter and scheduling delay so the
		// client's 50 ms samples stay smooth.
		carryBytes += rate * 1e6 * elapsed / 8
		// Bound the burst after a long stall to two ticks of traffic.
		if maxCarry := rate * 1e6 * 2 * paceInterval.Seconds() / 8; carryBytes > maxCarry {
			carryBytes = maxCarry
		}
		for carryBytes >= DatagramSize {
			carryBytes -= DatagramSize
			seq++
			if b := s.cfg.Faults; b != nil && b.DropData(s.elapsed(), uint64(seq)) {
				// Burst loss: the datagram is paced but never hits the wire.
				s.metrics.faultsInjected.Inc()
				continue
			}
			d := wire.Data{
				TestID:  sess.testID,
				Seq:     seq,
				SentNS:  uint64(time.Now().UnixNano()),
				Payload: payload,
			}
			pkt = d.AppendTo(pkt[:0])
			if _, err := s.conn.WriteToUDP(pkt, sess.peer); err != nil {
				if s.closed.Load() {
					return
				}
				// Transient send failure (e.g. buffer full): drop and move on,
				// exactly like a lossy link.
				s.metrics.sendErrors.Inc()
				break
			}
			s.bytesSent.Add(int64(len(pkt)))
			s.metrics.datagramsSent.Inc()
			s.metrics.bytesSent.Add(uint64(len(pkt)))
		}
	}
}
