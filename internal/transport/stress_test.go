package transport

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestServerParallelClients hammers one Server with many concurrent client
// probes while other goroutines poll its counters — the §5.2 budget-server
// situation where sessions from many users multiplex one uplink. The test
// asserts functional outcomes (every test accepted, every Fin observed, the
// server drains to zero sessions) and doubles as the concurrency gate: under
// `go test -race` it drives the readLoop/pacer/handler interleavings that
// shared-counter races hide in.
func TestServerParallelClients(t *testing.T) {
	var results atomic.Int64
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		UplinkMbps: 10000,
		OnResult:   func(mbps float64) { results.Add(1) },
	})
	if err != nil {
		t.Fatalf("starting server: %v", err)
	}
	defer srv.Close()
	addr := srv.Addr().String()

	const clients = 12
	var wg sync.WaitGroup

	// Background pollers exercise the read paths of the shared state while
	// sessions churn.
	pollStop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-pollStop:
				return
			default:
				_ = srv.ActiveSessions()
				_ = srv.BytesSent()
			}
		}
	}()

	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			pool := &ServerPool{Servers: []PoolServer{{Addr: addr, UplinkMbps: 10000.0 / clients}}}
			probe, err := NewUDPProbe(pool, rng)
			if err != nil {
				errs <- err
				return
			}
			for _, mbps := range []float64{1, 5, 2, 8} {
				if err := probe.SetRate(mbps); err != nil {
					errs <- err
					return
				}
				if _, ok := probe.NextSample(); !ok {
					probe.Finish(0, probe.Elapsed())
					errs <- nil
					return
				}
				_ = probe.Jitter()
				_ = probe.DataMB()
			}
			probe.Finish(rng.Float64()*100, probe.Elapsed())
			errs <- nil
		}(int64(i + 1))
	}

	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Errorf("client failed: %v", err)
		}
	}
	close(pollStop)
	wg.Wait()

	// Every Fin must have been delivered to OnResult. Fin is sent once over
	// UDP on loopback; give retried reads a moment to drain.
	deadline := time.Now().Add(5 * time.Second)
	for results.Load() < clients && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := results.Load(); got != clients {
		t.Errorf("OnResult saw %d results, want %d", got, clients)
	}
	for srv.ActiveSessions() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := srv.ActiveSessions(); n != 0 {
		t.Errorf("server still tracks %d sessions after all Fins", n)
	}
	if srv.BytesSent() == 0 {
		t.Error("server paced no probe bytes despite active tests")
	}
}

// TestServerCloseDuringLoad closes the server while clients are mid-test:
// no goroutine may leak or panic, and Close must wait for the pacers.
func TestServerCloseDuringLoad(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerConfig{UplinkMbps: 1000})
	if err != nil {
		t.Fatalf("starting server: %v", err)
	}
	addr := srv.Addr().String()

	const clients = 6
	var wg sync.WaitGroup
	probes := make([]*UDPProbe, clients)
	for i := 0; i < clients; i++ {
		pool := &ServerPool{Servers: []PoolServer{{Addr: addr, UplinkMbps: 1000.0 / clients}}}
		probe, err := NewUDPProbe(pool, rand.New(rand.NewSource(int64(i+100))))
		if err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
		probes[i] = probe
		wg.Add(1)
		go func(p *UDPProbe) {
			defer wg.Done()
			if err := p.SetRate(3); err != nil {
				return // server may already be closing — that's the point
			}
			p.NextSample()
		}(probe)
	}

	time.Sleep(50 * time.Millisecond) // let pacers spin up
	if err := srv.Close(); err != nil {
		t.Errorf("closing under load: %v", err)
	}
	wg.Wait()
	for _, p := range probes {
		p.Finish(0, 0)
	}
	// Closing twice is a no-op, not a double-close panic.
	if err := srv.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}
