package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/mobilebandwidth/swiftest/internal/obs"
	"github.com/mobilebandwidth/swiftest/internal/wire"
)

// TestVanishedClientIsReaped simulates the field failure mode the idle
// timeout exists for: a client opens a session and then disappears — crash,
// radio loss — without ever sending Fin. The server must reap the session
// after IdleTimeout and account for it in the reap metric.
func TestVanishedClientIsReaped(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		UplinkMbps:  50,
		IdleTimeout: 300 * time.Millisecond,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Handcrafted wire client: handshake, then vanish. Rate 0 keeps the
	// pacer silent so the socket can close without ICMP-unreachable noise.
	conn, err := net.DialUDP("udp", nil, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	req := wire.TestRequest{TestID: 42, RateKbps: 0}
	reqBuf := req.AppendTo(make([]byte, 0, wire.TestRequestLen))
	buf := make([]byte, 256)
	accepted := false
	for attempt := 0; attempt < 5 && !accepted; attempt++ {
		if _, err := conn.Write(reqBuf); err != nil {
			t.Fatal(err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, err := conn.Read(buf)
		if err != nil {
			continue
		}
		var acc wire.TestAccept
		if acc.Decode(buf[:n]) == nil && acc.TestID == 42 {
			accepted = true
		}
	}
	if !accepted {
		t.Fatal("server did not accept the test")
	}
	if srv.ActiveSessions() != 1 {
		t.Fatalf("active sessions = %d, want 1", srv.ActiveSessions())
	}
	conn.Close() // vanish: no Fin

	deadline := time.Now().Add(5 * time.Second)
	for srv.ActiveSessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("session not reaped within 5 s (idle timeout 300 ms)")
		}
		time.Sleep(20 * time.Millisecond)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["swiftest_server_sessions_reaped_total"]; got != 1 {
		t.Errorf("reaped counter = %d, want 1", got)
	}
	if got := snap.Counters["swiftest_server_sessions_finished_total"]; got != 0 {
		t.Errorf("finished counter = %d, want 0 — no Fin was sent", got)
	}
	if got := snap.Counters["swiftest_server_sessions_started_total"]; got != 1 {
		t.Errorf("started counter = %d, want 1", got)
	}
	// The active-sessions gauge must have returned to zero with the reap.
	waitGauge := time.Now().Add(2 * time.Second)
	for {
		if g := reg.Snapshot().Gauges["swiftest_server_sessions_active"]; g == 0 {
			break
		}
		if time.Now().After(waitGauge) {
			t.Fatalf("active gauge stuck at %g", reg.Snapshot().Gauges["swiftest_server_sessions_active"])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRetireExactlyOnceUnderRace provokes the three-way teardown race the
// wheel's retired flag exists for: an idle reap (wheel tick), a client Fin
// (read loop) and a server Close all try to deregister the same session
// concurrently. Exactly one path may win — the active-sessions gauge must
// land on exactly zero (a double retirement would drive it negative) and at
// most one of the finished/reaped counters may record the exit.
func TestRetireExactlyOnceUnderRace(t *testing.T) {
	for round := 0; round < 25; round++ {
		reg := obs.NewRegistry()
		srv, err := newServer("127.0.0.1:0", ServerConfig{
			IdleTimeout: time.Nanosecond, // any wheel tick reaps immediately
			Metrics:     reg,
		}, false)
		if err != nil {
			t.Fatal(err)
		}
		peer := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 40000 + round}
		sess := addWheelSession(srv, 7, peer, 0)
		sess.lastSeen.Store(time.Now().Add(-time.Hour).UnixNano())

		var wg sync.WaitGroup
		wg.Add(3)
		go func() { defer wg.Done(); srv.advance(time.Now()) }()
		go func() { defer wg.Done(); srv.handleFin(&wire.Fin{TestID: 7}, peer) }()
		go func() { defer wg.Done(); _ = srv.Close() }()
		wg.Wait()

		if n := srv.ActiveSessions(); n != 0 {
			t.Fatalf("round %d: %d sessions survived a triple teardown", round, n)
		}
		snap := reg.Snapshot()
		if g := snap.Gauges["swiftest_server_sessions_active"]; g != 0 {
			t.Fatalf("round %d: active gauge = %g after teardown, want exactly 0", round, g)
		}
		exits := snap.Counters["swiftest_server_sessions_finished_total"] +
			snap.Counters["swiftest_server_sessions_reaped_total"]
		if exits > 1 {
			t.Fatalf("round %d: %d teardown paths recorded the same session", round, exits)
		}
	}
}

// TestRetiredSessionStopsPacing: after a Fin retires the session, further
// wheel ticks must emit nothing for it even though the tick that raced the
// Fin may still hold it in its snapshot.
func TestRetiredSessionStopsPacing(t *testing.T) {
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	srv, err := newServer("127.0.0.1:0",
		ServerConfig{UplinkMbps: 100, startedAt: identityBase}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	peer := sink.LocalAddr().(*net.UDPAddr)
	addWheelSession(srv, 9, peer, 20000)

	now := identityBase
	for i := 0; i < 10; i++ {
		now = now.Add(paceInterval)
		srv.advance(now)
	}
	before := srv.BytesSent()
	if before == 0 {
		t.Fatal("session never paced")
	}
	srv.handleFin(&wire.Fin{TestID: 9, ResultKbps: 20000}, peer)
	for i := 0; i < 10; i++ {
		now = now.Add(paceInterval)
		srv.advance(now)
	}
	if after := srv.BytesSent(); after != before {
		t.Errorf("retired session still paced: %d bytes after Fin", after-before)
	}
}
