package transport

import (
	"net"
	"testing"
	"time"

	"github.com/mobilebandwidth/swiftest/internal/obs"
	"github.com/mobilebandwidth/swiftest/internal/wire"
)

// TestVanishedClientIsReaped simulates the field failure mode the idle
// timeout exists for: a client opens a session and then disappears — crash,
// radio loss — without ever sending Fin. The server must reap the session
// after IdleTimeout and account for it in the reap metric.
func TestVanishedClientIsReaped(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		UplinkMbps:  50,
		IdleTimeout: 300 * time.Millisecond,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Handcrafted wire client: handshake, then vanish. Rate 0 keeps the
	// pacer silent so the socket can close without ICMP-unreachable noise.
	conn, err := net.DialUDP("udp", nil, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	req := wire.TestRequest{TestID: 42, RateKbps: 0}
	reqBuf := req.AppendTo(make([]byte, 0, wire.TestRequestLen))
	buf := make([]byte, 256)
	accepted := false
	for attempt := 0; attempt < 5 && !accepted; attempt++ {
		if _, err := conn.Write(reqBuf); err != nil {
			t.Fatal(err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, err := conn.Read(buf)
		if err != nil {
			continue
		}
		var acc wire.TestAccept
		if acc.Decode(buf[:n]) == nil && acc.TestID == 42 {
			accepted = true
		}
	}
	if !accepted {
		t.Fatal("server did not accept the test")
	}
	if srv.ActiveSessions() != 1 {
		t.Fatalf("active sessions = %d, want 1", srv.ActiveSessions())
	}
	conn.Close() // vanish: no Fin

	deadline := time.Now().Add(5 * time.Second)
	for srv.ActiveSessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("session not reaped within 5 s (idle timeout 300 ms)")
		}
		time.Sleep(20 * time.Millisecond)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["swiftest_server_sessions_reaped_total"]; got != 1 {
		t.Errorf("reaped counter = %d, want 1", got)
	}
	if got := snap.Counters["swiftest_server_sessions_finished_total"]; got != 0 {
		t.Errorf("finished counter = %d, want 0 — no Fin was sent", got)
	}
	if got := snap.Counters["swiftest_server_sessions_started_total"]; got != 1 {
		t.Errorf("started counter = %d, want 1", got)
	}
	// The active-sessions gauge must have returned to zero with the reap.
	waitGauge := time.Now().Add(2 * time.Second)
	for {
		if g := reg.Snapshot().Gauges["swiftest_server_sessions_active"]; g == 0 {
			break
		}
		if time.Now().After(waitGauge) {
			t.Fatalf("active gauge stuck at %g", reg.Snapshot().Gauges["swiftest_server_sessions_active"])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
