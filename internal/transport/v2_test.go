package transport

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/mobilebandwidth/swiftest/internal/errdefs"
	"github.com/mobilebandwidth/swiftest/internal/estimate"
	"github.com/mobilebandwidth/swiftest/internal/obs"
	"github.com/mobilebandwidth/swiftest/internal/wire"
)

// v2Probe opens a probe against one server with the given protocol policy.
func v2Probe(t *testing.T, s *Server, proto Protocol, seed int64) *UDPProbe {
	t.Helper()
	pool := &ServerPool{Servers: []PoolServer{{Addr: s.Addr().String(), UplinkMbps: 100}}}
	probe, err := NewUDPProbe(pool, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	probe.SetProtocol(proto)
	return probe
}

// TestV2EndToEnd runs the two-channel protocol against the dual-stack server
// on both syscall paths: negotiation lands on v2, paced throughput tracks
// the request, per-interval Reports arrive, and the Bye retires the session
// and delivers the result.
func TestV2EndToEnd(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode WireMode
	}{
		{"batched", WireAuto},
		{"fallback", WireFallback},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			results := make(chan float64, 1)
			s := startServer(t, ServerConfig{
				UplinkMbps: 100, Wire: tc.mode, Metrics: reg,
				OnResult: func(m float64) { results <- m },
			})
			probe := v2Probe(t, s, ProtoAuto, 11)
			probe.SetWire(tc.mode)

			const want = 20.0
			if err := probe.SetRate(want); err != nil {
				t.Fatal(err)
			}
			if ver := probe.NegotiatedVersion(); ver != 2 {
				t.Fatalf("negotiated version = %d, want 2", ver)
			}
			probe.NextSample()
			probe.NextSample()
			var sum float64
			const n = 10
			for i := 0; i < n; i++ {
				v, ok := probe.NextSample()
				if !ok {
					t.Fatal("sample stream ended")
				}
				sum += v
			}
			if got := sum / n; math.Abs(got-want)/want > 0.25 {
				t.Errorf("v2 paced throughput = %.1f Mbps, want ≈%.0f", got, want)
			}
			// Half a second of samples spans several 100 ms report
			// intervals; the loss view must have a baseline by now.
			var reported bool
			probe.mu.Lock()
			for _, sess := range probe.sessions {
				if sess.repBytes.Load() > 0 {
					reported = true
				}
			}
			probe.mu.Unlock()
			if !reported {
				t.Error("no server Report arrived on the control channel")
			}
			if loss := probe.ReportedLoss(); loss < 0 || loss >= 1 {
				t.Errorf("reported loss = %g, want [0, 1)", loss)
			}

			probe.SetFinalReport(estimate.Estimates{
				CrossingMbps: 21, TrimmedMeanMbps: 20, SustainedPeakMbps: 22, P90P80Mbps: 21,
			}, estimate.RegimeStable)
			probe.Finish(21.5, 600*time.Millisecond)
			select {
			case got := <-results:
				if math.Abs(got-21.5) > 0.01 {
					t.Errorf("Bye result = %g, want 21.5", got)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("server never received the Bye result")
			}
			deadline := time.Now().Add(2 * time.Second)
			for s.ActiveSessions() != 0 && time.Now().Before(deadline) {
				time.Sleep(10 * time.Millisecond)
			}
			if n := s.ActiveSessions(); n != 0 {
				t.Errorf("active sessions = %d after Bye, want 0", n)
			}
			if got := reg.Counter("swiftest_server_v2_sessions_total", "").Value(); got != 1 {
				t.Errorf("v2 sessions counter = %d, want 1", got)
			}
		})
	}
}

// TestV2FallsBackToV1 pins the negotiated downgrade: a legacy (v1-only)
// server never answers the Hello, and the ProtoAuto client completes the
// test over the single-socket protocol.
func TestV2FallsBackToV1(t *testing.T) {
	s := startServer(t, ServerConfig{UplinkMbps: 100, v1Only: true})
	probe := v2Probe(t, s, ProtoAuto, 12)
	if err := probe.SetRate(15); err != nil {
		t.Fatal(err)
	}
	defer probe.Finish(0, 0)
	if ver := probe.NegotiatedVersion(); ver != 1 {
		t.Fatalf("negotiated version = %d, want 1 (fallback)", ver)
	}
	probe.NextSample()
	probe.NextSample()
	var sum float64
	for i := 0; i < 6; i++ {
		v, _ := probe.NextSample()
		sum += v
	}
	if got := sum / 6; math.Abs(got-15)/15 > 0.3 {
		t.Errorf("fallback throughput = %.1f Mbps, want ≈15", got)
	}
	if loss := probe.ReportedLoss(); loss != 0 {
		t.Errorf("v1 session reported loss = %g, want 0 (no Reports on v1)", loss)
	}
}

// TestProtoV2RequiredRejectsLegacyServer: a client pinned to v2 fails fast
// against a legacy server, with the protocol mismatch in the error chain.
func TestProtoV2RequiredRejectsLegacyServer(t *testing.T) {
	s := startServer(t, ServerConfig{UplinkMbps: 100, v1Only: true})
	probe := v2Probe(t, s, ProtoV2, 13)
	defer probe.Finish(0, 0)
	err := probe.SetRate(10)
	if err == nil {
		t.Fatal("SetRate succeeded against a v1-only server with ProtoV2 pinned")
	}
	if !errors.Is(err, errdefs.ErrProtocolUnsupported) {
		t.Errorf("error = %v, want errdefs.ErrProtocolUnsupported in the chain", err)
	}
}

// TestV2AuthRejection locks the server with a fleet key: an unauthenticated
// v2 Setup is refused — observable in both the client error chain and the
// server's auth-reject counter — while a client holding a minted token is
// admitted.
func TestV2AuthRejection(t *testing.T) {
	const key = 0xfeedface12345678
	reg := obs.NewRegistry()
	s := startServer(t, ServerConfig{UplinkMbps: 100, AuthKey: key, Metrics: reg})

	// No token: refused, and the refusal is not retried into oblivion.
	probe := v2Probe(t, s, ProtoV2, 14)
	err := probe.SetRate(10)
	probe.Finish(0, 0)
	if err == nil {
		t.Fatal("unauthenticated SetRate succeeded against a keyed server")
	}
	if !errors.Is(err, errdefs.ErrAuthRejected) {
		t.Errorf("error = %v, want errdefs.ErrAuthRejected in the chain", err)
	}
	if got := reg.Counter("swiftest_server_auth_rejects_total", "").Value(); got == 0 {
		t.Error("auth-reject counter did not move")
	}

	// Minted token: admitted.
	okProbe := v2Probe(t, s, ProtoV2, 15)
	okProbe.SetToken(wire.MintToken(key, 7, 42, 0))
	if err := okProbe.SetRate(10); err != nil {
		t.Fatalf("authenticated SetRate: %v", err)
	}
	okProbe.NextSample()
	if v, ok := okProbe.NextSample(); !ok || v <= 0 {
		t.Errorf("authenticated session sample = (%.1f, %v), want traffic", v, ok)
	}
	okProbe.Finish(0, 0)

	// A forged token (wrong key) is refused like a missing one.
	forged := v2Probe(t, s, ProtoV2, 16)
	forged.SetToken(wire.MintToken(key^1, 7, 42, 0))
	err = forged.SetRate(10)
	forged.Finish(0, 0)
	if !errors.Is(err, errdefs.ErrAuthRejected) {
		t.Errorf("forged-token error = %v, want errdefs.ErrAuthRejected", err)
	}
}

// TestV2TokenExpiry is the lease-deadline round trip: a token whose expiry
// already passed is rejected at setup exactly like a forged one, a token
// whose deadline is still ahead is admitted, and the client cannot stretch
// a stale deadline because the MAC covers it.
func TestV2TokenExpiry(t *testing.T) {
	const key = 0xfeedface87654321
	reg := obs.NewRegistry()
	s := startServer(t, ServerConfig{UplinkMbps: 100, AuthKey: key, Metrics: reg})
	nowMS := uint64(time.Now().UnixMilli())

	// Expired a minute ago: RejectAuth, counted.
	stale := v2Probe(t, s, ProtoV2, 24)
	stale.SetToken(wire.MintToken(key, 7, 42, nowMS-60_000))
	err := stale.SetRate(10)
	stale.Finish(0, 0)
	if !errors.Is(err, errdefs.ErrAuthRejected) {
		t.Fatalf("stale-token error = %v, want errdefs.ErrAuthRejected", err)
	}
	if got := reg.Counter("swiftest_server_auth_rejects_total", "").Value(); got == 0 {
		t.Error("auth-reject counter did not move on an expired token")
	}

	// Same stale token with the deadline rewritten forward: the MAC no
	// longer verifies, so the stretch buys nothing.
	stretched := wire.MintToken(key, 7, 42, nowMS-60_000)
	stretched.Expires = nowMS + 3_600_000
	cheat := v2Probe(t, s, ProtoV2, 25)
	cheat.SetToken(stretched)
	err = cheat.SetRate(10)
	cheat.Finish(0, 0)
	if !errors.Is(err, errdefs.ErrAuthRejected) {
		t.Errorf("stretched-token error = %v, want errdefs.ErrAuthRejected", err)
	}

	// An hour of validity left: admitted and served.
	fresh := v2Probe(t, s, ProtoV2, 26)
	fresh.SetToken(wire.MintToken(key, 7, 42, nowMS+3_600_000))
	if err := fresh.SetRate(10); err != nil {
		t.Fatalf("fresh-token SetRate: %v", err)
	}
	fresh.NextSample()
	if v, ok := fresh.NextSample(); !ok || v <= 0 {
		t.Errorf("fresh-token session sample = (%.1f, %v), want traffic", v, ok)
	}
	fresh.Finish(0, 0)
}

// TestV1ClientAdmittedByKeyedServer pins the compatibility policy: lease
// authentication gates only v2 Setups — a legacy client has no token field
// to check and is served as before.
func TestV1ClientAdmittedByKeyedServer(t *testing.T) {
	s := startServer(t, ServerConfig{UplinkMbps: 100, AuthKey: 0xabc})
	probe := v2Probe(t, s, ProtoV1, 17)
	defer probe.Finish(0, 0)
	if err := probe.SetRate(10); err != nil {
		t.Fatalf("v1 client against keyed server: %v", err)
	}
	if ver := probe.NegotiatedVersion(); ver != 1 {
		t.Fatalf("negotiated version = %d, want 1", ver)
	}
	probe.NextSample()
	if v, ok := probe.NextSample(); !ok || v <= 0 {
		t.Errorf("v1 sample = (%.1f, %v), want traffic", v, ok)
	}
}

// TestV1PinnedStreamIsV1 verifies a ProtoV1 probe sees only version-1 Data
// frames from the dual-stack server — the byte-level face of "a v2 server
// serves legacy clients an unchanged stream". (The wheel-level identity
// tests pin the exact digests.)
func TestV1PinnedStreamIsV1(t *testing.T) {
	s := startServer(t, ServerConfig{UplinkMbps: 100})
	probe := v2Probe(t, s, ProtoV1, 18)
	defer probe.Finish(0, 0)
	if err := probe.SetRate(10); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	probe.mu.Lock()
	defer probe.mu.Unlock()
	for _, sess := range probe.sessions {
		if sess.v2 {
			t.Error("ProtoV1 probe opened a v2 session")
		}
	}
	if probe.rxBytes.Load() == 0 {
		t.Error("no v1 traffic delivered")
	}
}

func TestParseProtocol(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Protocol
		ok   bool
	}{
		{"auto", ProtoAuto, true},
		{"", ProtoAuto, true},
		{"v1", ProtoV1, true},
		{"1", ProtoV1, true},
		{"v2", ProtoV2, true},
		{"2", ProtoV2, true},
		{"v3", ProtoAuto, false},
	} {
		got, err := ParseProtocol(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseProtocol(%q) = (%v, %v), want (%v, ok=%v)", tc.in, got, err, tc.want, tc.ok)
		}
	}
}
