package transport

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mobilebandwidth/swiftest/internal/obs"
	"github.com/mobilebandwidth/swiftest/internal/wire"
)

// PingServer measures the round-trip latency to one server with count pings
// and returns the minimum RTT observed, the standard BTS server-selection
// metric (§2). It returns an error if no pong arrives within timeout.
func PingServer(addr string, count int, timeout time.Duration) (time.Duration, error) {
	if count <= 0 {
		count = 3
	}
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return 0, fmt.Errorf("transport: resolving %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return 0, fmt.Errorf("transport: dialing %q: %w", addr, err)
	}
	defer conn.Close()

	best := time.Duration(-1)
	buf := make([]byte, 256)
	out := make([]byte, 0, wire.PingLen)
	for i := 0; i < count; i++ {
		seq := uint32(i + 1)
		ping := wire.Ping{Seq: seq, SentNS: uint64(time.Now().UnixNano())}
		out = ping.AppendTo(out[:0])
		if _, err := conn.Write(out); err != nil {
			return 0, fmt.Errorf("transport: sending ping: %w", err)
		}
		if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return 0, err
		}
		for {
			n, err := conn.Read(buf)
			if err != nil {
				break // timeout: try the next ping
			}
			var pong wire.Pong
			if pong.Decode(buf[:n]) != nil || pong.Seq != seq {
				continue // stale or foreign datagram
			}
			rtt := time.Duration(uint64(time.Now().UnixNano()) - pong.EchoNS)
			if best < 0 || rtt < best {
				best = rtt
			}
			break
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("transport: no pong from %s within %v", addr, timeout)
	}
	return best, nil
}

// ServerPool is the client's view of the deployed test servers: addresses
// with their advertised uplink capacities (§5.1 selects a server set whose
// total uplink slightly exceeds the probing rate).
type ServerPool struct {
	Servers []PoolServer
}

// PoolServer is one test server in the pool.
type PoolServer struct {
	Addr       string
	UplinkMbps float64
	// RTT is filled by RankByLatency.
	RTT time.Duration
}

// RankByLatency pings every server and sorts the pool by ascending RTT,
// dropping unreachable servers. It returns an error if no server responded.
func (p *ServerPool) RankByLatency(pingCount int, timeout time.Duration) error {
	reachable := p.Servers[:0]
	for _, srv := range p.Servers {
		rtt, err := PingServer(srv.Addr, pingCount, timeout)
		if err != nil {
			continue
		}
		srv.RTT = rtt
		reachable = append(reachable, srv)
	}
	p.Servers = reachable
	if len(p.Servers) == 0 {
		return errors.New("transport: no reachable test server")
	}
	sort.Slice(p.Servers, func(i, j int) bool { return p.Servers[i].RTT < p.Servers[j].RTT })
	return nil
}

// serversFor picks the nearest servers whose total uplink covers rateMbps
// with a little headroom (§5.1). It never returns an empty set while the
// pool is non-empty.
func (p *ServerPool) serversFor(rateMbps float64) []PoolServer {
	const headroom = 1.05
	var out []PoolServer
	var total float64
	for _, srv := range p.Servers {
		out = append(out, srv)
		total += srv.UplinkMbps
		if total >= rateMbps*headroom {
			break
		}
	}
	return out
}

// UDPProbe implements core.Probe over real UDP sockets against a pool of
// test servers. It opens one session per server as the requested probing
// rate grows, splitting the rate across sessions in latency order.
type UDPProbe struct {
	pool    *ServerPool
	testID  uint64
	started time.Time
	trace   *obs.Trace

	mu       sync.Mutex
	sessions []*clientSession // guarded by mu

	rateSeq     atomic.Uint32
	rxBytes     atomic.Int64
	lastSample  time.Time
	lastRxBytes int64

	// jitterNs is the RFC 3550-style interarrival jitter estimate in
	// nanoseconds, stored as float64 bits for lock-free updates.
	jitterNs    atomic.Uint64
	lastTransit atomic.Int64 // previous packet's transit time (ns)

	sampleInterval time.Duration
	closed         atomic.Bool
}

type clientSession struct {
	conn   *net.UDPConn
	server PoolServer
	probe  *UDPProbe
	done   chan struct{}
}

// SampleInterval is the client's sampling period, matching §5.1's 50 ms.
const SampleInterval = 50 * time.Millisecond

// NewUDPProbe prepares a probe against the ranked pool. The probe is idle
// until the first SetRate.
func NewUDPProbe(pool *ServerPool, rng *rand.Rand) (*UDPProbe, error) {
	if len(pool.Servers) == 0 {
		return nil, errors.New("transport: empty server pool")
	}
	now := time.Now()
	return &UDPProbe{
		pool:           pool,
		testID:         rng.Uint64(),
		started:        now,
		lastSample:     now,
		sampleInterval: SampleInterval,
	}, nil
}

// TestID reports the probe's wire-protocol test identifier, for correlating
// run-records with server-side logs and metrics.
func (p *UDPProbe) TestID() uint64 { return p.testID }

// SetTrace attaches a tracer that receives transport-level events (server
// additions). Call before the first SetRate; a nil tracer disables emission.
func (p *UDPProbe) SetTrace(tr *obs.Trace) { p.trace = tr }

// SetRate implements core.Probe: it sizes the server set for mbps and
// distributes the rate across sessions in latency order.
//
// Mid-test failures degrade gracefully rather than aborting the test: if an
// additional server cannot be opened the rate is spread over the sessions
// that exist, and datagram send errors are tolerated like any other UDP loss
// (§5.1: servers are added "if necessary" — when none is available, the test
// continues with what it has and the samples tell the truth). Only a closed
// probe or an invalid rate is an error. The first SetRate is the exception:
// with no session at all the test cannot start, so total session failure is
// reported.
func (p *UDPProbe) SetRate(mbps float64) error {
	if mbps < 0 {
		return fmt.Errorf("transport: negative probing rate %g", mbps)
	}
	if p.closed.Load() {
		return errors.New("transport: probe closed")
	}
	targets := p.pool.serversFor(mbps)

	p.mu.Lock()
	defer p.mu.Unlock()
	// Open sessions for any newly needed servers; failures shrink the
	// target set instead of failing the test.
	for len(p.sessions) < len(targets) {
		sess, err := p.openSession(targets[len(p.sessions)])
		if err != nil {
			targets = targets[:len(p.sessions)]
			break
		}
		p.sessions = append(p.sessions, sess)
	}
	if len(p.sessions) == 0 {
		return errors.New("transport: no test server accepted the session")
	}
	// Split the rate: each server takes up to its uplink, nearest first.
	remaining := mbps
	seq := p.rateSeq.Add(1)
	for i, sess := range p.sessions {
		share := 0.0
		if i < len(targets) {
			share = remaining
			if share > sess.server.UplinkMbps {
				share = sess.server.UplinkMbps
			}
			remaining -= share
		}
		rs := wire.RateSet{TestID: p.testID, RateKbps: wire.KbpsFromMbps(share), Seq: seq}
		buf := rs.AppendTo(make([]byte, 0, wire.RateSetLen))
		// Send twice: RateSet is idempotent; send errors are UDP loss.
		for j := 0; j < 2; j++ {
			_, _ = sess.conn.Write(buf)
		}
	}
	return nil
}

// openSession dials one server, performs the TestRequest/TestAccept
// handshake, and starts the receive loop. Callers hold p.mu.
func (p *UDPProbe) openSession(server PoolServer) (*clientSession, error) {
	raddr, err := net.ResolveUDPAddr("udp", server.Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolving %q: %w", server.Addr, err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing %q: %w", server.Addr, err)
	}
	if err := conn.SetReadBuffer(4 << 20); err != nil {
		// Non-fatal: the default buffer just loses more under burst.
		_ = err
	}

	req := wire.TestRequest{TestID: p.testID, RateKbps: 0}
	reqBuf := req.AppendTo(make([]byte, 0, wire.TestRequestLen))
	buf := make([]byte, 2048)
	accepted := false
	for attempt := 0; attempt < 5 && !accepted; attempt++ {
		if _, err := conn.Write(reqBuf); err != nil {
			conn.Close()
			return nil, fmt.Errorf("transport: test request to %s: %w", server.Addr, err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		for {
			n, err := conn.Read(buf)
			if err != nil {
				break
			}
			var acc wire.TestAccept
			if acc.Decode(buf[:n]) == nil && acc.TestID == p.testID {
				accepted = true
				break
			}
		}
	}
	if !accepted {
		conn.Close()
		return nil, fmt.Errorf("transport: %s did not accept test %d", server.Addr, p.testID)
	}
	_ = conn.SetReadDeadline(time.Time{})

	sess := &clientSession{conn: conn, server: server, probe: p, done: make(chan struct{})}
	p.trace.Record(p.Elapsed(), obs.EventServerAdd, 0, server.UplinkMbps, server.Addr)
	go sess.receiveLoop()
	return sess, nil
}

func (cs *clientSession) receiveLoop() {
	defer close(cs.done)
	buf := make([]byte, 2048)
	for {
		_ = cs.conn.SetReadDeadline(time.Now().Add(time.Second))
		n, err := cs.conn.Read(buf)
		if err != nil {
			if cs.probe.closed.Load() {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		typ, err := wire.PeekType(buf[:n])
		if err != nil || typ != wire.TypeData {
			continue
		}
		cs.probe.rxBytes.Add(int64(n))
		cs.probe.observeJitter(buf[:n])
	}
}

// observeJitter folds one Data packet into the RFC 3550 interarrival-jitter
// estimator: J += (|D| − J)/16 where D is the change in (arrival − send)
// transit time between consecutive packets. Clock offset between client and
// server cancels in the difference, so no synchronisation is needed.
func (p *UDPProbe) observeJitter(pkt []byte) {
	var d wire.Data
	if d.Decode(pkt) != nil {
		return
	}
	transit := time.Now().UnixNano() - int64(d.SentNS)
	prev := p.lastTransit.Swap(transit)
	if prev == 0 {
		return
	}
	delta := transit - prev
	if delta < 0 {
		delta = -delta
	}
	for {
		oldBits := p.jitterNs.Load()
		old := math.Float64frombits(oldBits)
		next := old + (float64(delta)-old)/16
		if p.jitterNs.CompareAndSwap(oldBits, math.Float64bits(next)) {
			return
		}
	}
}

// Jitter reports the current interarrival-jitter estimate — a free
// diagnostic of the access link's queueing behaviour during the test.
func (p *UDPProbe) Jitter() time.Duration {
	return time.Duration(math.Float64frombits(p.jitterNs.Load()))
}

// NextSample implements core.Probe: it sleeps until the next sampling
// boundary and reports the throughput observed in the window.
func (p *UDPProbe) NextSample() (float64, bool) {
	if p.closed.Load() {
		return 0, false
	}
	next := p.lastSample.Add(p.sampleInterval)
	if d := time.Until(next); d > 0 {
		time.Sleep(d)
	}
	now := time.Now()
	elapsed := now.Sub(p.lastSample).Seconds()
	if elapsed <= 0 {
		return 0, false
	}
	rx := p.rxBytes.Load()
	bytes := rx - p.lastRxBytes
	p.lastRxBytes = rx
	p.lastSample = now
	return float64(bytes) * 8 / elapsed / 1e6, true
}

// Elapsed implements core.Probe.
func (p *UDPProbe) Elapsed() time.Duration { return time.Since(p.started) }

// DataMB implements core.Probe.
func (p *UDPProbe) DataMB() float64 { return float64(p.rxBytes.Load()) / 1e6 }

// Finish reports the result to every session's server and closes the probe.
func (p *UDPProbe) Finish(resultMbps float64, duration time.Duration) {
	if p.closed.Swap(true) {
		return
	}
	p.mu.Lock()
	sessions := append([]*clientSession(nil), p.sessions...)
	p.mu.Unlock()
	fin := wire.Fin{
		TestID:     p.testID,
		ResultKbps: wire.KbpsFromMbps(resultMbps),
		DurationMS: uint32(duration.Milliseconds()),
	}
	buf := fin.AppendTo(make([]byte, 0, wire.FinLen))
	for _, sess := range sessions {
		_, _ = sess.conn.Write(buf)
		sess.conn.Close()
		<-sess.done
	}
}
