package transport

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mobilebandwidth/swiftest/internal/errdefs"
	"github.com/mobilebandwidth/swiftest/internal/estimate"
	"github.com/mobilebandwidth/swiftest/internal/faults"
	"github.com/mobilebandwidth/swiftest/internal/obs"
	"github.com/mobilebandwidth/swiftest/internal/transport/batchio"
	"github.com/mobilebandwidth/swiftest/internal/wire"
)

// PingServer measures the round-trip latency to one server with count pings
// and returns the minimum RTT observed, the standard BTS server-selection
// metric (§2). It is PingServerContext with a background context.
func PingServer(addr string, count int, timeout time.Duration) (time.Duration, error) {
	return PingServerContext(context.Background(), addr, count, timeout)
}

// PingServerContext is PingServer honouring ctx: cancellation stops the ping
// exchange early. Failure to elicit any pong yields an error matching both
// errdefs.ErrProbeTimeout and errdefs.ServerError.
func PingServerContext(ctx context.Context, addr string, count int, timeout time.Duration) (time.Duration, error) {
	if count <= 0 {
		count = 3
	}
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return 0, &errdefs.ServerError{Addr: addr, Op: "ping", Err: err}
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return 0, &errdefs.ServerError{Addr: addr, Op: "ping", Err: err}
	}
	defer conn.Close()

	best := time.Duration(-1)
	buf := make([]byte, 256)
	out := make([]byte, 0, wire.PingLen)
	for i := 0; i < count; i++ {
		if err := ctx.Err(); err != nil {
			if best >= 0 {
				return best, nil // partial measurement still useful
			}
			return 0, &errdefs.ServerError{Addr: addr, Op: "ping",
				Err: fmt.Errorf("%w: %w", errdefs.ErrTestAborted, err)}
		}
		seq := uint32(i + 1)
		ping := wire.Ping{Seq: seq, SentNS: uint64(time.Now().UnixNano())}
		out = ping.AppendTo(out[:0])
		if _, err := conn.Write(out); err != nil {
			return 0, &errdefs.ServerError{Addr: addr, Op: "ping", Err: err}
		}
		deadline := time.Now().Add(timeout)
		if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
			deadline = d
		}
		if err := conn.SetReadDeadline(deadline); err != nil {
			return 0, err
		}
		for {
			n, err := conn.Read(buf)
			if err != nil {
				break // timeout: try the next ping
			}
			var pong wire.Pong
			if pong.Decode(buf[:n]) != nil || pong.Seq != seq {
				continue // stale or foreign datagram
			}
			rtt := time.Duration(uint64(time.Now().UnixNano()) - pong.EchoNS)
			if best < 0 || rtt < best {
				best = rtt
			}
			break
		}
	}
	if best < 0 {
		return 0, &errdefs.ServerError{Addr: addr, Op: "ping",
			Err: fmt.Errorf("no pong within %v: %w", timeout, errdefs.ErrProbeTimeout)}
	}
	return best, nil
}

// ServerPool is the client's view of the deployed test servers: addresses
// with their advertised uplink capacities (§5.1 selects a server set whose
// total uplink slightly exceeds the probing rate).
type ServerPool struct {
	Servers []PoolServer
}

// PoolServer is one test server in the pool.
type PoolServer struct {
	Addr       string
	UplinkMbps float64
	// RTT is filled by RankByLatency.
	RTT time.Duration
}

// rankConcurrency bounds the goroutines RankByLatency fans out, so a huge
// candidate list cannot open hundreds of sockets at once.
const rankConcurrency = 8

// RankByLatency pings every server and sorts the pool by ascending RTT,
// dropping unreachable servers. It is RankByLatencyContext with a background
// context.
func (p *ServerPool) RankByLatency(pingCount int, timeout time.Duration) error {
	return p.RankByLatencyContext(context.Background(), pingCount, timeout)
}

// RankByLatencyContext pings all servers concurrently (bounded fan-out) and
// sorts the pool by ascending RTT, dropping unreachable servers. Ties keep
// the caller's original order, so the ranking is deterministic given the RTT
// measurements. It returns an error matching errdefs.ErrNoReachableServer if
// no server responded.
func (p *ServerPool) RankByLatencyContext(ctx context.Context, pingCount int, timeout time.Duration) error {
	candidates := len(p.Servers)
	rtts := make([]time.Duration, candidates)
	errs := make([]error, candidates)
	sem := make(chan struct{}, rankConcurrency)
	var wg sync.WaitGroup
	for i := range p.Servers {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			rtts[i], errs[i] = PingServerContext(ctx, p.Servers[i].Addr, pingCount, timeout)
		}(i)
	}
	wg.Wait()

	// Filter in original order, then stable-sort: equal RTTs preserve the
	// configured order, keeping the ranking reproducible.
	reachable := p.Servers[:0]
	for i, srv := range p.Servers {
		if errs[i] != nil {
			continue
		}
		srv.RTT = rtts[i]
		reachable = append(reachable, srv)
	}
	p.Servers = reachable
	if len(p.Servers) == 0 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("transport: ranking servers: %w: %w", errdefs.ErrTestAborted, err)
		}
		return fmt.Errorf("transport: %w (tried %d)", errdefs.ErrNoReachableServer, candidates)
	}
	sort.SliceStable(p.Servers, func(i, j int) bool { return p.Servers[i].RTT < p.Servers[j].RTT })
	return nil
}

// serversFor picks the nearest servers whose total uplink covers rateMbps
// with a little headroom (§5.1). It never returns an empty set while the
// pool is non-empty.
func (p *ServerPool) serversFor(rateMbps float64) []PoolServer {
	var out []PoolServer
	var total float64
	for _, srv := range p.Servers {
		out = append(out, srv)
		total += srv.UplinkMbps
		if total >= rateMbps*uplinkHeadroom {
			break
		}
	}
	return out
}

// uplinkHeadroom over-provisions the selected server set slightly beyond the
// probing rate (§5.1 "slightly exceeds").
const uplinkHeadroom = 1.05

// handshakeAttempts bounds session-setup retries per server.
const handshakeAttempts = 5

// handshakeTimeout is the per-attempt wait for a TestAccept.
const handshakeTimeout = 200 * time.Millisecond

// UDPProbe implements core.Probe over real UDP sockets against a pool of
// test servers. It opens one session per server as the requested probing
// rate grows, splitting the rate across sessions in latency order, and fails
// over mid-test: a session that was assigned rate but delivered nothing for
// K consecutive sample windows is declared lost, its share moving to the
// surviving servers.
type UDPProbe struct {
	pool    *ServerPool
	testID  uint64
	started time.Time
	trace   *obs.Trace
	ctx     context.Context

	mu         sync.Mutex
	sessions   []*clientSession // guarded by mu; lost sessions keep their slot
	nextServer int              // next unopened pool index; guarded by mu
	targetMbps float64          // guarded by mu
	used       int              // sessions opened; guarded by mu
	lost       int              // sessions declared dead; guarded by mu

	lostAfter    int   // K zero-byte windows before a session is lost
	lastOpenErr  error // most recent session-open failure; guarded by mu
	lostCounter  *obs.Counter
	retryCounter *obs.Counter

	rateSeq     atomic.Uint32
	rxBytes     atomic.Int64
	lastSample  time.Time
	lastRxBytes int64

	// jitterNs is the RFC 3550-style interarrival jitter estimate in
	// nanoseconds, stored as float64 bits for lock-free updates.
	jitterNs    atomic.Uint64
	lastTransit atomic.Int64 // previous packet's transit time (ns)

	sampleInterval time.Duration
	closed         atomic.Bool

	wire    WireMode // syscall strategy for session receive loops
	recvBuf *bufPool // pooled receive buffers, shared across sessions

	proto Protocol   // wire generation policy; set before the first SetRate
	token wire.Token // dispatcher-lease auth token carried by v2 Setups

	// finalEst/finalRegime ride the v2 Bye when set; guarded by mu.
	finalEst    estimate.Estimates
	finalRegime estimate.Regime
}

type clientSession struct {
	conn   *net.UDPConn // the only socket (v1) or the data channel (v2)
	server PoolServer
	probe  *UDPProbe
	done   chan struct{}

	rxBytes  atomic.Int64
	lastRx   int64   // NextSample's window cursor; sampling goroutine only
	assigned float64 // Mbps currently asked of this server; probe.mu held for access
	lost     bool    // probe.mu held for access
	tracker  *faults.LostTracker

	// Protocol-v2 state; zero-valued on v1 sessions.
	v2         bool
	id         uint64       // session ID, the key both channels share
	caps       uint32       // capability intersection from the SetupAck
	ctrl       *net.UDPConn // control channel
	ctrlDone   chan struct{}
	byeAck     chan struct{}
	byeAckOnce sync.Once
	repBytes   atomic.Uint64 // cumulative paced bytes, latest server Report
	repDgrams  atomic.Uint32 // cumulative paced datagrams, latest server Report
}

// SampleInterval is the client's sampling period, matching §5.1's 50 ms.
const SampleInterval = 50 * time.Millisecond

// NewUDPProbe prepares a probe against the ranked pool. The probe is idle
// until the first SetRate. It is NewUDPProbeContext with a background
// context.
func NewUDPProbe(pool *ServerPool, rng *rand.Rand) (*UDPProbe, error) {
	return NewUDPProbeContext(context.Background(), pool, rng)
}

// NewUDPProbeContext prepares a probe whose handshakes and sample waits
// honour ctx: cancellation makes the next NextSample return !ok and stops
// handshake retries.
func NewUDPProbeContext(ctx context.Context, pool *ServerPool, rng *rand.Rand) (*UDPProbe, error) {
	if len(pool.Servers) == 0 {
		return nil, fmt.Errorf("transport: %w: empty server pool", errdefs.ErrNoServers)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	now := time.Now()
	return &UDPProbe{
		pool:           pool,
		testID:         rng.Uint64(),
		started:        now,
		lastSample:     now,
		sampleInterval: SampleInterval,
		lostAfter:      faults.DefaultLostWindows,
		ctx:            ctx,
		recvBuf:        newBufPool(clientRecvBufSize, clientRecvBatch),
	}, nil
}

// TestID reports the probe's wire-protocol test identifier, for correlating
// run-records with server-side logs and metrics.
func (p *UDPProbe) TestID() uint64 { return p.testID }

// SetTrace attaches a tracer that receives transport-level events (server
// additions, handshake retries, lost sessions). Call before the first
// SetRate; a nil tracer disables emission.
func (p *UDPProbe) SetTrace(tr *obs.Trace) { p.trace = tr }

// SetLostAfter overrides K, the consecutive zero-byte sample windows after
// which an assigned session is declared lost. Call before the first SetRate;
// k <= 0 keeps the default.
func (p *UDPProbe) SetLostAfter(k int) {
	if k > 0 {
		p.lostAfter = k
	}
}

// SetWire selects the receive syscall strategy (WireAuto batches datagrams
// per syscall where the platform supports it; WireFallback forces one read
// per datagram). Call before the first SetRate. Both paths observe identical
// traffic — the batched-vs-fallback property test pins that.
func (p *UDPProbe) SetWire(mode WireMode) { p.wire = mode }

// SetMetrics registers the client-side metric series on reg. Call before the
// first SetRate; a nil registry disables instrumentation.
func (p *UDPProbe) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	p.lostCounter = reg.Counter("swiftest_client_sessions_lost_total",
		"Server sessions declared dead mid-test and failed over.")
	p.retryCounter = reg.Counter("swiftest_client_handshake_retries_total",
		"Session-setup attempts that needed retransmission.")
}

// SetRate implements core.Probe: it sizes the server set for mbps and
// distributes the rate across sessions in latency order.
//
// Mid-test failures degrade gracefully rather than aborting the test: if an
// additional server cannot be opened the rate is spread over the sessions
// that exist, and datagram send errors are tolerated like any other UDP loss
// (§5.1: servers are added "if necessary" — when none is available, the test
// continues with what it has and the samples tell the truth). Only a closed
// probe or an invalid rate is an error. The first SetRate is the exception:
// with no session at all the test cannot start, so total session failure is
// reported.
func (p *UDPProbe) SetRate(mbps float64) error {
	if mbps < 0 {
		return fmt.Errorf("transport: negative probing rate %g", mbps)
	}
	if p.closed.Load() {
		return errors.New("transport: probe closed")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.targetMbps = mbps
	p.redistributeLocked()
	if mbps > 0 && p.liveCountLocked() == 0 {
		if p.lastOpenErr != nil {
			// Surface the concrete refusal (auth rejection, protocol
			// mismatch) instead of a generic exhaustion error.
			return fmt.Errorf("transport: %w: no test server accepted the session: %w",
				errdefs.ErrNoReachableServer, p.lastOpenErr)
		}
		return fmt.Errorf("transport: %w: no test server accepted the session",
			errdefs.ErrNoReachableServer)
	}
	return nil
}

func (p *UDPProbe) liveCountLocked() int {
	n := 0
	for _, sess := range p.sessions {
		if !sess.lost {
			n++
		}
	}
	return n
}

// redistributeLocked splits the current target rate across live sessions
// nearest-first, opening new sessions (skipping servers that refuse) until
// the live uplink covers the target with headroom, then pushes the new
// shares to every live server. Callers hold p.mu.
func (p *UDPProbe) redistributeLocked() {
	// Uplink already live.
	var covered float64
	for _, sess := range p.sessions {
		if !sess.lost {
			covered += sess.server.UplinkMbps
		}
	}
	// Open more servers while coverage falls short; failures shrink the
	// candidate set instead of failing the test.
	for covered < p.targetMbps*uplinkHeadroom && p.nextServer < len(p.pool.Servers) {
		srv := p.pool.Servers[p.nextServer]
		p.nextServer++
		sess, err := p.openSessionLocked(srv)
		if err != nil {
			p.lastOpenErr = err
			continue
		}
		p.sessions = append(p.sessions, sess)
		covered += srv.UplinkMbps
	}
	// Split the rate: each live server takes up to its uplink, nearest
	// first; then push shares on the wire.
	remaining := p.targetMbps
	seq := p.rateSeq.Add(1)
	for _, sess := range p.sessions {
		if sess.lost {
			continue
		}
		share := remaining
		if share > sess.server.UplinkMbps {
			share = sess.server.UplinkMbps
		}
		remaining -= share
		sess.assigned = share
		// Send twice: rate updates are idempotent; send errors are UDP loss.
		if sess.v2 {
			r2 := wire.Rate2{SessionID: sess.id, RateKbps: wire.KbpsFromMbps(share), Seq: seq}
			buf := r2.AppendTo(make([]byte, 0, wire.Rate2Len))
			for j := 0; j < 2; j++ {
				_, _ = sess.ctrl.Write(buf)
			}
			continue
		}
		rs := wire.RateSet{TestID: p.testID, RateKbps: wire.KbpsFromMbps(share), Seq: seq}
		buf := rs.AppendTo(make([]byte, 0, wire.RateSetLen))
		for j := 0; j < 2; j++ {
			_, _ = sess.conn.Write(buf)
		}
	}
}

// openSessionLocked dials one server at the configured protocol generation:
// v2 first unless pinned to ProtoV1, falling back to the legacy
// TestRequest/TestAccept handshake when a ProtoAuto negotiation goes
// unanswered. Callers hold p.mu.
func (p *UDPProbe) openSessionLocked(server PoolServer) (*clientSession, error) {
	if p.proto != ProtoV1 {
		sess, err := p.openV2SessionLocked(server)
		if err == nil {
			return sess, nil
		}
		if p.proto == ProtoV2 || !errors.Is(err, errdefs.ErrProtocolUnsupported) {
			return nil, err
		}
		// ProtoAuto against a legacy server: negotiate down to v1.
	}
	raddr, err := net.ResolveUDPAddr("udp", server.Addr)
	if err != nil {
		return nil, &errdefs.ServerError{Addr: server.Addr, Op: "handshake", Err: err}
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, &errdefs.ServerError{Addr: server.Addr, Op: "handshake", Err: err}
	}
	if err := conn.SetReadBuffer(4 << 20); err != nil {
		// Non-fatal: the default buffer just loses more under burst.
		_ = err
	}

	req := wire.TestRequest{TestID: p.testID, RateKbps: 0}
	reqBuf := req.AppendTo(make([]byte, 0, wire.TestRequestLen))
	buf := make([]byte, 2048)
	accepted := false
	for attempt := 0; attempt < handshakeAttempts && !accepted; attempt++ {
		if err := p.ctx.Err(); err != nil {
			conn.Close()
			return nil, &errdefs.ServerError{Addr: server.Addr, Op: "handshake",
				Err: fmt.Errorf("%w: %w", errdefs.ErrTestAborted, err)}
		}
		if attempt > 0 {
			p.retryCounter.Inc()
			p.trace.Record(p.Elapsed(), obs.EventServerRetry, float64(attempt), 0, server.Addr)
		}
		if _, err := conn.Write(reqBuf); err != nil {
			conn.Close()
			return nil, &errdefs.ServerError{Addr: server.Addr, Op: "handshake", Err: err}
		}
		_ = conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
		for {
			n, err := conn.Read(buf)
			if err != nil {
				break
			}
			var acc wire.TestAccept
			if acc.Decode(buf[:n]) == nil && acc.TestID == p.testID {
				accepted = true
				break
			}
		}
	}
	if !accepted {
		conn.Close()
		return nil, &errdefs.ServerError{Addr: server.Addr, Op: "handshake",
			Err: fmt.Errorf("no accept after %d attempts: %w", handshakeAttempts, errdefs.ErrProbeTimeout)}
	}
	_ = conn.SetReadDeadline(time.Time{})

	sess := &clientSession{
		conn:    conn,
		server:  server,
		probe:   p,
		done:    make(chan struct{}),
		tracker: faults.NewLostTracker(p.lostAfter),
	}
	p.used++
	p.trace.Record(p.Elapsed(), obs.EventServerAdd, 0, server.UplinkMbps, server.Addr)
	go sess.receiveLoop()
	return sess, nil
}

// clientRecvBatch is how many datagrams a session's receive loop accepts
// per syscall on the batched path.
const clientRecvBatch = 16

// clientRecvBufSize holds any probe datagram with headroom.
const clientRecvBufSize = 2048

// receiveLoop drains the session socket in batches: up to clientRecvBatch
// datagrams per syscall where recvmmsg exists, one otherwise. Receive
// buffers come from the probe's shared pool and are held for the loop's
// lifetime, so the steady state reads at 0 allocs/packet.
func (cs *clientSession) receiveLoop() {
	defer close(cs.done)
	mode := batchio.ModeAuto
	if cs.probe.wire == WireFallback {
		mode = batchio.ModeFallback
	}
	bio := batchio.New(cs.conn, mode)
	msgs := make([]batchio.Message, clientRecvBatch)
	bufs := make([]*pktBuf, clientRecvBatch)
	for i := range msgs {
		bufs[i] = cs.probe.recvBuf.get()
		msgs[i].Buf = bufs[i].b
	}
	defer func() {
		for _, b := range bufs {
			b.release()
		}
	}()
	for {
		_ = cs.conn.SetReadDeadline(time.Now().Add(time.Second))
		n, err := bio.RecvBatch(msgs)
		if err != nil {
			if cs.probe.closed.Load() {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		for i := 0; i < n; i++ {
			pkt := msgs[i].Buf[:msgs[i].N]
			_, typ, err := wire.PeekVersion(pkt)
			if err != nil || (typ != wire.TypeData && typ != wire.TypeData2) {
				continue
			}
			cs.rxBytes.Add(int64(len(pkt)))
			cs.probe.rxBytes.Add(int64(len(pkt)))
			cs.probe.observeJitter(pkt)
		}
	}
}

// observeJitter folds one Data packet into the RFC 3550 interarrival-jitter
// estimator: J += (|D| − J)/16 where D is the change in (arrival − send)
// transit time between consecutive packets. Clock offset between client and
// server cancels in the difference, so no synchronisation is needed.
func (p *UDPProbe) observeJitter(pkt []byte) {
	// Both probe-datagram generations carry the send timestamp; only the
	// frame around it differs.
	var sentNS uint64
	if pkt[2] == wire.Version2 {
		var d2 wire.Data2
		if d2.Decode(pkt) != nil {
			return
		}
		sentNS = d2.SentNS
	} else {
		var d wire.Data
		if d.Decode(pkt) != nil {
			return
		}
		sentNS = d.SentNS
	}
	transit := time.Now().UnixNano() - int64(sentNS)
	prev := p.lastTransit.Swap(transit)
	if prev == 0 {
		return
	}
	delta := transit - prev
	if delta < 0 {
		delta = -delta
	}
	for {
		oldBits := p.jitterNs.Load()
		old := math.Float64frombits(oldBits)
		next := old + (float64(delta)-old)/16
		if p.jitterNs.CompareAndSwap(oldBits, math.Float64bits(next)) {
			return
		}
	}
}

// Jitter reports the current interarrival-jitter estimate — a free
// diagnostic of the access link's queueing behaviour during the test.
func (p *UDPProbe) Jitter() time.Duration {
	return time.Duration(math.Float64frombits(p.jitterNs.Load()))
}

// NextSample implements core.Probe: it waits until the next sampling
// boundary (abandoning the wait if the probe's context is cancelled),
// reports the throughput observed in the window, and folds each session's
// delivery through the dead-session detector — failing over when a session
// that owes traffic has been silent for K consecutive windows.
//
//lint:allow ctxflow the wait is bounded by the sampling interval and the probe's stored context
func (p *UDPProbe) NextSample() (float64, bool) {
	if p.closed.Load() {
		return 0, false
	}
	next := p.lastSample.Add(p.sampleInterval)
	if d := time.Until(next); d > 0 {
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-p.ctx.Done():
			timer.Stop()
			return 0, false
		}
	}
	now := time.Now()
	elapsed := now.Sub(p.lastSample).Seconds()
	if elapsed <= 0 {
		return 0, false
	}
	rx := p.rxBytes.Load()
	bytes := rx - p.lastRxBytes
	p.lastRxBytes = rx
	p.lastSample = now

	p.detectLostSessions()

	p.mu.Lock()
	alive := p.liveCountLocked() > 0 || p.targetMbps == 0
	p.mu.Unlock()
	if !alive {
		return 0, false // every server is gone; the probe is exhausted
	}
	return float64(bytes) * 8 / elapsed / 1e6, true
}

// detectLostSessions folds the last window's per-session deliveries through
// each tracker and fails over any session declared dead: its share is
// redistributed to the survivors and its socket closed.
func (p *UDPProbe) detectLostSessions() {
	var toClose []*clientSession
	p.mu.Lock()
	failedOver := false
	for _, sess := range p.sessions {
		if sess.lost {
			continue
		}
		rx := sess.rxBytes.Load()
		window := rx - sess.lastRx
		sess.lastRx = rx
		if sess.tracker.Observe(window, sess.assigned > 0) {
			sess.lost = true
			p.lost++
			p.lostCounter.Inc()
			p.trace.Record(p.Elapsed(), obs.EventServerLost, sess.assigned, 0, sess.server.Addr)
			sess.assigned = 0
			toClose = append(toClose, sess)
			failedOver = true
		}
	}
	if failedOver {
		p.redistributeLocked()
	}
	p.mu.Unlock()
	for _, sess := range toClose {
		sess.conn.Close() // unblocks the receive loop
		if sess.ctrl != nil {
			sess.ctrl.Close() // unblocks the control loop
		}
	}
}

// Elapsed implements core.Probe.
func (p *UDPProbe) Elapsed() time.Duration { return time.Since(p.started) }

// DataMB implements core.Probe.
func (p *UDPProbe) DataMB() float64 { return float64(p.rxBytes.Load()) / 1e6 }

// ServersUsed implements core.ServerHealth.
func (p *UDPProbe) ServersUsed() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// ServersLost implements core.ServerHealth.
func (p *UDPProbe) ServersLost() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lost
}

// Finish reports the result to every session's server and closes the probe:
// a Fin on v1 sessions, a Bye (retransmitted until acked) carrying the
// estimator family on v2 ones.
func (p *UDPProbe) Finish(resultMbps float64, duration time.Duration) {
	if p.closed.Swap(true) {
		return
	}
	p.mu.Lock()
	sessions := append([]*clientSession(nil), p.sessions...)
	est, regime := p.finalEst, p.finalRegime
	p.mu.Unlock()
	fin := wire.Fin{
		TestID:     p.testID,
		ResultKbps: wire.KbpsFromMbps(resultMbps),
		DurationMS: uint32(duration.Milliseconds()),
	}
	buf := fin.AppendTo(make([]byte, 0, wire.FinLen))
	for _, sess := range sessions {
		if !sess.lost {
			if sess.v2 {
				p.sendBye(sess, resultMbps, duration, est, regime)
			} else {
				_, _ = sess.conn.Write(buf)
			}
		}
		sess.conn.Close()
		if sess.ctrl != nil {
			sess.ctrl.Close()
		}
		<-sess.done
		if sess.ctrlDone != nil {
			<-sess.ctrlDone
		}
	}
}
