package transport

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/mobilebandwidth/swiftest/internal/core"
	"github.com/mobilebandwidth/swiftest/internal/gmm"
)

func startServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPingPong(t *testing.T) {
	s := startServer(t, ServerConfig{})
	rtt, err := PingServer(s.Addr().String(), 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 || rtt > 500*time.Millisecond {
		t.Errorf("loopback RTT = %v, implausible", rtt)
	}
}

func TestPingUnreachable(t *testing.T) {
	// A port with no server: must time out, not hang.
	if _, err := PingServer("127.0.0.1:1", 1, 100*time.Millisecond); err == nil {
		t.Error("expected error pinging an unreachable server")
	}
}

func TestRankByLatency(t *testing.T) {
	s1 := startServer(t, ServerConfig{})
	s2 := startServer(t, ServerConfig{})
	pool := &ServerPool{Servers: []PoolServer{
		{Addr: "127.0.0.1:1", UplinkMbps: 100}, // unreachable, dropped
		{Addr: s1.Addr().String(), UplinkMbps: 100},
		{Addr: s2.Addr().String(), UplinkMbps: 100},
	}}
	if err := pool.RankByLatency(2, 200*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(pool.Servers) != 2 {
		t.Fatalf("reachable servers = %d, want 2", len(pool.Servers))
	}
	for _, srv := range pool.Servers {
		if srv.RTT <= 0 {
			t.Errorf("server %s has no RTT", srv.Addr)
		}
	}
}

func TestRankByLatencyAllDead(t *testing.T) {
	pool := &ServerPool{Servers: []PoolServer{{Addr: "127.0.0.1:1", UplinkMbps: 100}}}
	if err := pool.RankByLatency(1, 50*time.Millisecond); err == nil {
		t.Error("expected error when every server is unreachable")
	}
}

func TestServersForCoversRate(t *testing.T) {
	pool := &ServerPool{Servers: []PoolServer{
		{Addr: "a", UplinkMbps: 100},
		{Addr: "b", UplinkMbps: 100},
		{Addr: "c", UplinkMbps: 100},
	}}
	if got := len(pool.serversFor(50)); got != 1 {
		t.Errorf("servers for 50 Mbps = %d, want 1", got)
	}
	if got := len(pool.serversFor(150)); got != 2 {
		t.Errorf("servers for 150 Mbps = %d, want 2", got)
	}
	if got := len(pool.serversFor(10000)); got != 3 {
		t.Errorf("servers for 10 Gbps = %d, want all 3", got)
	}
}

func TestPacedDeliveryAtRequestedRate(t *testing.T) {
	s := startServer(t, ServerConfig{UplinkMbps: 100})
	pool := &ServerPool{Servers: []PoolServer{{Addr: s.Addr().String(), UplinkMbps: 100}}}
	probe, err := NewUDPProbe(pool, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Finish(0, 0)

	const want = 20.0 // Mbps: modest for CI loopback
	if err := probe.SetRate(want); err != nil {
		t.Fatal(err)
	}
	// Skip the first two settling samples, then average half a second.
	probe.NextSample()
	probe.NextSample()
	var sum float64
	const n = 10
	for i := 0; i < n; i++ {
		s, ok := probe.NextSample()
		if !ok {
			t.Fatal("sample stream ended")
		}
		sum += s
	}
	got := sum / n
	if math.Abs(got-want)/want > 0.25 {
		t.Errorf("paced throughput = %.1f Mbps, want ≈%.0f", got, want)
	}
}

func TestServerClampsToUplink(t *testing.T) {
	s := startServer(t, ServerConfig{UplinkMbps: 10})
	pool := &ServerPool{Servers: []PoolServer{{Addr: s.Addr().String(), UplinkMbps: 10}}}
	probe, err := NewUDPProbe(pool, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Finish(0, 0)

	if err := probe.SetRate(200); err != nil { // far beyond uplink
		t.Fatal(err)
	}
	probe.NextSample()
	probe.NextSample()
	var sum float64
	const n = 10
	for i := 0; i < n; i++ {
		v, _ := probe.NextSample()
		sum += v
	}
	got := sum / n
	if got > 14 {
		t.Errorf("throughput = %.1f Mbps from a 10 Mbps-uplink server", got)
	}
}

func TestFinStopsSessionAndReportsResult(t *testing.T) {
	results := make(chan float64, 1)
	s := startServer(t, ServerConfig{UplinkMbps: 100, OnResult: func(m float64) { results <- m }})
	pool := &ServerPool{Servers: []PoolServer{{Addr: s.Addr().String(), UplinkMbps: 100}}}
	probe, err := NewUDPProbe(pool, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.SetRate(10); err != nil {
		t.Fatal(err)
	}
	probe.NextSample()
	probe.Finish(42.5, 800*time.Millisecond)

	select {
	case got := <-results:
		if math.Abs(got-42.5) > 0.01 {
			t.Errorf("reported result = %g, want 42.5", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server never received the Fin result")
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.ActiveSessions() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := s.ActiveSessions(); n != 0 {
		t.Errorf("active sessions = %d after Fin, want 0", n)
	}
}

// TestEndToEndSwiftestOverUDP runs the full core engine over the real
// transport on loopback: the flagship integration test.
func TestEndToEndSwiftestOverUDP(t *testing.T) {
	s := startServer(t, ServerConfig{UplinkMbps: 100})
	pool := &ServerPool{Servers: []PoolServer{{Addr: s.Addr().String(), UplinkMbps: 100}}}
	if err := pool.RankByLatency(2, time.Second); err != nil {
		t.Fatal(err)
	}
	probe, err := NewUDPProbe(pool, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	// Loopback delivers whatever the server paces, so the "access
	// bandwidth" under test is the server's own 25 Mbps-mode pacing; the
	// engine must converge on the first mode without escalating wildly.
	model := gmm.MustNew(
		gmm.Component{Weight: 0.7, Mu: 25, Sigma: 3},
		gmm.Component{Weight: 0.3, Mu: 80, Sigma: 8},
	)
	res, err := core.Run(probe, core.Config{Model: model, MaxDuration: 4 * time.Second})
	probe.Finish(res.Bandwidth, res.Duration)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bandwidth <= 0 {
		t.Fatal("no bandwidth estimate")
	}
	if len(res.Samples) < 10 {
		t.Errorf("samples = %d, want ≥10", len(res.Samples))
	}
	t.Logf("UDP end-to-end: %.1f Mbps in %v (%d samples, converged=%v)",
		res.Bandwidth, res.Duration, len(res.Samples), res.Converged)
}

func TestProbeAfterCloseErrors(t *testing.T) {
	s := startServer(t, ServerConfig{})
	pool := &ServerPool{Servers: []PoolServer{{Addr: s.Addr().String(), UplinkMbps: 100}}}
	probe, err := NewUDPProbe(pool, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	probe.Finish(0, 0)
	if err := probe.SetRate(10); err == nil {
		t.Error("SetRate after Finish should error")
	}
	if _, ok := probe.NextSample(); ok {
		t.Error("NextSample after Finish should report !ok")
	}
}

func TestEmptyPoolRejected(t *testing.T) {
	if _, err := NewUDPProbe(&ServerPool{}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty pool accepted")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s := startServer(t, ServerConfig{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
