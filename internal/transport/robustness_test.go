package transport

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/mobilebandwidth/swiftest/internal/core"
	"github.com/mobilebandwidth/swiftest/internal/gmm"
	"github.com/mobilebandwidth/swiftest/internal/wire"
)

// TestServerSurvivesGarbage floods the server with malformed datagrams of
// every size and then confirms it still answers pings.
func TestServerSurvivesGarbage(t *testing.T) {
	s := startServer(t, ServerConfig{})
	conn, err := net.Dial("udp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, 1500)
	for i := 0; i < 500; i++ {
		n := rng.Intn(len(buf)) + 1
		rng.Read(buf[:n])
		if _, err := conn.Write(buf[:n]); err != nil {
			t.Fatal(err)
		}
	}
	// Valid magic but truncated bodies and unknown types.
	for _, typ := range []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 200} {
		pkt := []byte{0x57, 0x54, 1, typ}
		if _, err := conn.Write(pkt); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := PingServer(s.Addr().String(), 2, time.Second); err != nil {
		t.Fatalf("server unresponsive after garbage: %v", err)
	}
}

// TestIdleSessionReaped verifies that a session whose client vanishes
// without a Fin is cleaned up by the idle timeout.
func TestIdleSessionReaped(t *testing.T) {
	s := startServer(t, ServerConfig{UplinkMbps: 10, IdleTimeout: 300 * time.Millisecond})
	conn, err := net.Dial("udp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// Handshake manually, then disappear.
	req := wire.TestRequest{TestID: 42, RateKbps: wire.KbpsFromMbps(1)}
	if _, err := conn.Write(req.AppendTo(nil)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.ActiveSessions() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if s.ActiveSessions() == 0 {
		t.Fatal("session never started")
	}
	conn.Close() // the client is gone; no Fin will ever arrive

	deadline = time.Now().Add(3 * time.Second)
	for s.ActiveSessions() != 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := s.ActiveSessions(); n != 0 {
		t.Errorf("sessions = %d after idle timeout, want 0", n)
	}
}

// TestClientSurvivesServerDeath kills the server mid-test: the engine must
// terminate at its deadline with whatever it observed, not hang.
func TestClientSurvivesServerDeath(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", ServerConfig{UplinkMbps: 50})
	if err != nil {
		t.Fatal(err)
	}
	pool := &ServerPool{Servers: []PoolServer{{Addr: s.Addr().String(), UplinkMbps: 50}}}
	probe, err := NewUDPProbe(pool, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Finish(0, 0)

	model := gmm.MustNew(gmm.Component{Weight: 1, Mu: 10, Sigma: 2})
	// Kill the server shortly after the test starts.
	go func() {
		time.Sleep(300 * time.Millisecond)
		s.Close()
	}()
	start := time.Now()
	res, err := core.Run(probe, core.Config{Model: model, MaxDuration: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Fatalf("engine hung for %v after server death", elapsed)
	}
	// The trailing window is all-zero after the server died; the result
	// reflects that rather than inventing bandwidth.
	if res.Bandwidth > 15 {
		t.Errorf("bandwidth = %.1f after server death", res.Bandwidth)
	}
}

// TestRateSetReorderingIgnoresStale delivers rate updates out of order and
// confirms the newest seq wins.
func TestRateSetReorderingIgnoresStale(t *testing.T) {
	s := startServer(t, ServerConfig{UplinkMbps: 100})
	conn, err := net.Dial("udp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	req := wire.TestRequest{TestID: 7, RateKbps: 0}
	if _, err := conn.Write(req.AppendTo(nil)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	// Newest first (seq 3, 20 Mbps), then a stale one (seq 2, 90 Mbps).
	rs3 := wire.RateSet{TestID: 7, RateKbps: wire.KbpsFromMbps(20), Seq: 3}
	rs2 := wire.RateSet{TestID: 7, RateKbps: wire.KbpsFromMbps(90), Seq: 2}
	conn.Write(rs3.AppendTo(nil))
	time.Sleep(20 * time.Millisecond)
	conn.Write(rs2.AppendTo(nil))

	// Measure the arrival rate for half a second; it must track 20, not 90.
	time.Sleep(100 * time.Millisecond)
	var bytes int
	buf := make([]byte, 2048)
	end := time.Now().Add(500 * time.Millisecond)
	_ = conn.SetReadDeadline(end)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			break
		}
		if typ, err := wire.PeekType(buf[:n]); err == nil && typ == wire.TypeData {
			bytes += n
		}
	}
	gotMbps := float64(bytes) * 8 / 0.5 / 1e6
	if gotMbps > 40 {
		t.Errorf("stale RateSet won: measured %.1f Mbps, want ≈20", gotMbps)
	}
	fin := wire.Fin{TestID: 7}
	conn.Write(fin.AppendTo(nil))
}

// TestDuplicateTestRequestIsIdempotent retransmits the handshake and checks
// only one session exists.
func TestDuplicateTestRequestIsIdempotent(t *testing.T) {
	s := startServer(t, ServerConfig{UplinkMbps: 10})
	conn, err := net.Dial("udp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := wire.TestRequest{TestID: 9, RateKbps: wire.KbpsFromMbps(1)}
	for i := 0; i < 5; i++ {
		if _, err := conn.Write(req.AppendTo(nil)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond)
	if n := s.ActiveSessions(); n != 1 {
		t.Errorf("sessions = %d after duplicate requests, want 1", n)
	}
}

// TestJitterObserved checks that a paced stream produces a plausible jitter
// estimate.
func TestJitterObserved(t *testing.T) {
	s := startServer(t, ServerConfig{UplinkMbps: 50})
	pool := &ServerPool{Servers: []PoolServer{{Addr: s.Addr().String(), UplinkMbps: 50}}}
	probe, err := NewUDPProbe(pool, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Finish(0, 0)
	if err := probe.SetRate(15); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		probe.NextSample()
	}
	j := probe.Jitter()
	if j <= 0 {
		t.Fatal("no jitter estimate after 0.5 s of traffic")
	}
	if j > 100*time.Millisecond {
		t.Errorf("loopback jitter = %v, implausibly large", j)
	}
}
