package transport

import (
	"bytes"
	"fmt"
	"net"
	"reflect"
	"testing"
	"time"

	"github.com/mobilebandwidth/swiftest/internal/core"
	"github.com/mobilebandwidth/swiftest/internal/faults"
	"github.com/mobilebandwidth/swiftest/internal/gmm"
	"github.com/mobilebandwidth/swiftest/internal/obs"
	"github.com/mobilebandwidth/swiftest/internal/wire"
)

// identityBase is the fixed epoch the scripted wheel clock starts from. It
// lies in the past, so real-clock lastSeen stamps never trigger the idle
// reap against scripted instants.
var identityBase = time.Unix(1700000000, 0)

// identityScript is one deterministic wheel schedule: a fault plan, a
// session layout and a mid-test rate change, everything keyed off
// identityBase so two runs draw identical fault and budget sequences.
type identityScript struct {
	ticks    int    // advance calls, paceInterval apart
	rateKbps uint32 // initial per-session rate
	rekbps   uint32 // rate set on session 0 halfway through
	sessions int
	plan     *faults.Plan
}

// wireCapture is everything one scripted run produced: the per-session raw
// datagram streams, in arrival order per socket.
type wireCapture struct {
	streams [][][]byte
}

// runScripted drives a wheel-less server through the script in the given
// wire mode and captures each session's datagram stream. The wheel clock is
// entirely synthetic: advance is called with identityBase + k·paceInterval,
// so sequence numbers, fault draws and SentNS stamps are pure functions of
// the script.
func runScripted(t *testing.T, mode WireMode, sc identityScript) wireCapture {
	t.Helper()
	// startedAt pins the epoch so fault times and SentNS are script-relative.
	cfg := ServerConfig{UplinkMbps: 100, Wire: mode, startedAt: identityBase}
	if sc.plan != nil {
		cfg.Faults = &faults.Binding{Inj: sc.plan.Injector(), Server: 0}
	}
	srv, err := newServer("127.0.0.1:0", cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conns := make([]*net.UDPConn, sc.sessions)
	for i := range conns {
		conn, err := net.DialUDP("udp", nil, srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		_ = conn.SetReadBuffer(4 << 20)
		conns[i] = conn
		handshake(t, conn, uint64(100+i), sc.rateKbps)
	}
	waitSessions(t, srv, sc.sessions)

	for k := 1; k <= sc.ticks; k++ {
		if sc.rekbps != 0 && k == sc.ticks/2 {
			rs := wire.RateSet{TestID: 100, RateKbps: sc.rekbps, Seq: 1}
			buf := rs.AppendTo(make([]byte, 0, wire.RateSetLen))
			if _, err := conns[0].Write(buf); err != nil {
				t.Fatal(err)
			}
			waitRate(t, srv, conns[0], 100, sc.rekbps)
		}
		srv.advance(identityBase.Add(time.Duration(k) * paceInterval))
	}

	capd := wireCapture{streams: make([][][]byte, sc.sessions)}
	for i, conn := range conns {
		capd.streams[i] = drainData(t, conn)
	}
	return capd
}

// handshake performs the TestRequest/TestAccept exchange on conn.
func handshake(t *testing.T, conn *net.UDPConn, testID uint64, rateKbps uint32) {
	t.Helper()
	req := wire.TestRequest{TestID: testID, RateKbps: rateKbps}
	reqBuf := req.AppendTo(make([]byte, 0, wire.TestRequestLen))
	buf := make([]byte, 256)
	for attempt := 0; attempt < 10; attempt++ {
		if _, err := conn.Write(reqBuf); err != nil {
			t.Fatal(err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, err := conn.Read(buf)
		if err != nil {
			continue
		}
		var acc wire.TestAccept
		if acc.Decode(buf[:n]) == nil && acc.TestID == testID {
			return
		}
	}
	t.Fatal("no TestAccept")
}

// waitSessions blocks until the server has n registered sessions.
func waitSessions(t *testing.T, srv *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for srv.ActiveSessions() != n {
		if time.Now().After(deadline) {
			t.Fatalf("sessions = %d, want %d", srv.ActiveSessions(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitRate blocks until the server applied the given rate to the session
// behind conn — RateSet travels through the real read loop, so the scripted
// wheel must not advance past it before it lands.
func waitRate(t *testing.T, srv *Server, conn *net.UDPConn, testID uint64, kbps uint32) {
	t.Helper()
	key := sessionKey{addr: conn.LocalAddr().String(), testID: testID}
	deadline := time.Now().Add(2 * time.Second)
	for {
		srv.mu.Lock()
		sess := srv.sessions[key]
		srv.mu.Unlock()
		if sess != nil && sess.rateKbps.Load() == kbps {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("rate %d not applied to session %d", kbps, testID)
		}
		time.Sleep(time.Millisecond)
	}
}

// drainData reads every Data datagram queued on conn until the socket goes
// quiet, returning the raw bytes in arrival order.
func drainData(t *testing.T, conn *net.UDPConn) [][]byte {
	t.Helper()
	var out [][]byte
	buf := make([]byte, 2048)
	for {
		_ = conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
		n, err := conn.Read(buf)
		if err != nil {
			return out
		}
		if typ, err := wire.PeekType(buf[:n]); err == nil && typ == wire.TypeData {
			out = append(out, append([]byte(nil), buf[:n]...))
		}
	}
}

// identityPlan exercises every fault kind that touches the pacing path:
// burst loss, a pacing cap, and a blackout window, all keyed on elapsed
// script time.
func identityPlan() *faults.Plan {
	return &faults.Plan{
		Seed: 7,
		Faults: []faults.Fault{
			{Kind: faults.BurstLoss, Server: 0, AtMS: 30, DurationMS: 40, Prob: 0.5},
			{Kind: faults.RateCap, Server: 0, AtMS: 120, DurationMS: 60, CapMbps: 5},
			{Kind: faults.Blackout, Server: 0, AtMS: 220, DurationMS: 40},
		},
	}
}

// TestBatchedFallbackBitIdentity is the refactor's safety property: the
// batched syscall path (sendmmsg + segmentation offload where available) and
// the portable fallback must put byte-identical datagram streams on the
// wire — same headers, same sequence gaps from injected loss, same
// timestamps — given the same scripted schedule. Everything the client
// derives from the stream then matches too.
func TestBatchedFallbackBitIdentity(t *testing.T) {
	sc := identityScript{
		ticks:    60, // 300 ms of scripted pacing
		rateKbps: 20000,
		rekbps:   35000,
		sessions: 2,
		plan:     identityPlan(),
	}
	batched := runScripted(t, WireAuto, sc)
	fallback := runScripted(t, WireFallback, sc)

	for i := range batched.streams {
		a, b := batched.streams[i], fallback.streams[i]
		if len(a) == 0 {
			t.Fatalf("session %d: batched run produced no datagrams", i)
		}
		if len(a) != len(b) {
			t.Fatalf("session %d: batched sent %d datagrams, fallback %d", i, len(a), len(b))
		}
		for j := range a {
			if !bytes.Equal(a[j], b[j]) {
				t.Fatalf("session %d datagram %d differs between batched and fallback paths", i, j)
			}
		}
	}

	// The loss plan must actually have bitten: sequence numbers in the
	// stream should show gaps, proving fault draws ran on both paths.
	seqs := map[uint32]bool{}
	var maxSeq uint32
	for _, pkt := range batched.streams[0] {
		var d wire.Data
		if err := d.Decode(pkt); err != nil {
			t.Fatal(err)
		}
		seqs[d.Seq] = true
		if d.Seq > maxSeq {
			maxSeq = d.Seq
		}
	}
	if len(seqs) == int(maxSeq) {
		t.Error("no sequence gaps: the burst-loss fault never fired, the script is too tame")
	}
}

// replayProbe feeds a fixed sample series through core.Run under virtual
// time, so two identical wire captures produce identical engine results.
type replayProbe struct {
	samples []float64
	i       int
	elapsed time.Duration
	rate    float64
	dataMB  float64
}

func (p *replayProbe) SetRate(mbps float64) error { p.rate = mbps; return nil }

func (p *replayProbe) NextSample() (float64, bool) {
	if p.i >= len(p.samples) {
		return 0, false
	}
	s := p.samples[p.i]
	p.i++
	p.elapsed += SampleInterval
	p.dataMB += s / 8 * SampleInterval.Seconds()
	return s, true
}

func (p *replayProbe) Elapsed() time.Duration { return p.elapsed }
func (p *replayProbe) DataMB() float64        { return p.dataMB }

// samplesFromCapture folds a capture into 50 ms throughput windows keyed on
// the datagrams' scripted SentNS stamps — the client-visible sample series.
func samplesFromCapture(t *testing.T, capd wireCapture) []float64 {
	t.Helper()
	base := uint64(identityBase.UnixNano())
	byWindow := map[int]int{}
	maxWin := 0
	for _, stream := range capd.streams {
		for _, pkt := range stream {
			var d wire.Data
			if err := d.Decode(pkt); err != nil {
				t.Fatal(err)
			}
			win := int((d.SentNS - base) / uint64(SampleInterval))
			byWindow[win] += len(pkt)
			if win > maxWin {
				maxWin = win
			}
		}
	}
	out := make([]float64, maxWin+1)
	for win, b := range byWindow {
		out[win] = float64(b) * 8 / SampleInterval.Seconds() / 1e6
	}
	return out
}

// TestBatchedFallbackResultIdentity closes the loop from wire bytes to
// engine output: the sample series derived from each path's capture is run
// through core.Run, and the Results and trace event streams must be
// reflect.DeepEqual — the refactor is invisible above the socket.
func TestBatchedFallbackResultIdentity(t *testing.T) {
	sc := identityScript{ticks: 120, rateKbps: 20000, sessions: 1, plan: identityPlan()}
	model := gmm.MustNew(gmm.Component{Weight: 1, Mu: 18, Sigma: 3})

	run := func(mode WireMode) (core.Result, []obs.Event) {
		capd := runScripted(t, mode, sc)
		tr := obs.NewTrace(0)
		res, err := core.Run(&replayProbe{samples: samplesFromCapture(t, capd)},
			core.Config{Model: model, MaxDuration: 5 * time.Second, Trace: tr})
		if err != nil {
			t.Fatal(err)
		}
		return res, tr.Events()
	}

	resA, evA := run(WireAuto)
	resB, evB := run(WireFallback)
	if !reflect.DeepEqual(resA, resB) {
		t.Errorf("Results diverge:\nbatched:  %+v\nfallback: %+v", resA, resB)
	}
	if !reflect.DeepEqual(evA, evB) {
		t.Errorf("trace event streams diverge: %d vs %d events", len(evA), len(evB))
	}
	if resA.Bandwidth <= 0 {
		t.Error("replayed run produced no bandwidth estimate")
	}
}

// TestScriptedFaultSequenceStable pins the fault draws themselves: the set
// of surviving sequence numbers under the scripted plan is identical run to
// run — the injector keys on (seed, server, seq), not on wall time or send
// order.
func TestScriptedFaultSequenceStable(t *testing.T) {
	sc := identityScript{ticks: 40, rateKbps: 16000, sessions: 1, plan: identityPlan()}
	want := ""
	for round := 0; round < 3; round++ {
		capd := runScripted(t, WireAuto, sc)
		got := ""
		for _, pkt := range capd.streams[0] {
			var d wire.Data
			if err := d.Decode(pkt); err != nil {
				t.Fatal(err)
			}
			got += fmt.Sprintf("%d,", d.Seq)
		}
		if round == 0 {
			want = got
		} else if got != want {
			t.Fatalf("round %d: surviving sequence set changed:\n%s\nvs\n%s", round, got, want)
		}
	}
}
