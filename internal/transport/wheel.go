package transport

import (
	"net"
	"time"

	"github.com/mobilebandwidth/swiftest/internal/transport/batchio"
	"github.com/mobilebandwidth/swiftest/internal/wire"
)

// The pacing wheel is the server's single pacing clock: one goroutine and
// one ticker advance every active session, replacing the
// per-session time.NewTicker goroutines the server used to spawn. Each tick
// the wheel reads the clock once, computes every session's byte budget with
// the same carry/clamp rules the per-session pacers used, assembles the due
// datagrams into pooled super-buffers, and hands the whole set to the
// batched sender — so the syscall count per tick is O(batches), not
// O(sessions × datagrams).
//
// Pacing state (seq, carryBytes, lastTick) lives on the session and is
// touched only by the wheel goroutine after the session is published, so
// none of it needs atomics.

// segsPerBuf is the number of DatagramSize segments a pooled super-buffer
// holds. It also bounds the datagrams one wire message may carry when UDP
// segmentation offload is active; 50 × 1200 stays under the 65507-byte UDP
// payload ceiling. The buffer geometry is identical on the fallback path —
// the two paths differ only in how many kernel crossings the same bytes
// cost.
const segsPerBuf = 50

// wheelLoop runs the pacing wheel until Close. It performs the pacing path's
// only wall-clock read: one time.Now per tick, threaded through advance so
// fault windows, idle checks and datagram timestamps all share one instant.
func (s *Server) wheelLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(paceInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.wheelStop:
			return
		case <-ticker.C:
		}
		s.advance(time.Now())
	}
}

// advance runs one wheel tick at the given instant: budget every active
// session, assemble due datagrams, flush them in batches. It is exported to
// tests (same package) so deterministic schedules can drive the wheel with
// scripted clocks through both syscall paths.
//
// swiftvet:hotpath
func (s *Server) advance(now time.Time) {
	at := now.Sub(s.started) // the tick's single fault-plan time base

	// Snapshot the session ring in registration order: deterministic
	// iteration keeps the wire stream reproducible under a scripted clock.
	s.active = s.active[:0]
	s.mu.Lock()
	s.active = append(s.active, s.order...)
	s.mu.Unlock()

	blackout := s.cfg.Faults.Blackout(at)
	capMbps, capped := s.cfg.Faults.CapMbps(at)

	for _, sess := range s.active {
		if sess.retired.Load() {
			continue
		}
		if now.UnixNano()-sess.lastSeen.Load() > int64(s.cfg.IdleTimeout) {
			if s.retire(sess) {
				s.metrics.sessionsReaped.Inc()
				s.logf("session idle timeout", "test_id", sess.testID) //lint:allow hotpath reap is a cold once-per-session exit
			}
			continue
		}
		peer := sess.peer.Load()
		if peer == nil {
			// v2 session still waiting for its DataOpen: nowhere to pace to
			// yet, and no budget accrues until the data channel binds.
			sess.carryBytes = 0
			continue
		}
		rate := wire.MbpsFromKbps(sess.rateKbps.Load())
		if blackout {
			// A blacked-out server paces nothing — the client sees the
			// session fall silent and fails over.
			sess.carryBytes = 0
			s.metrics.faultsInjected.Inc()
			continue
		}
		if capped && rate > capMbps {
			rate = capMbps
			s.metrics.faultsInjected.Inc()
		}
		if sess.lastTick.IsZero() {
			// First tick after registration: start the budget clock here so
			// elapsed time is always wheel-observed, never wall-read twice.
			sess.lastTick = now
			continue
		}
		elapsed := now.Sub(sess.lastTick).Seconds()
		sess.lastTick = now
		if rate <= 0 {
			sess.carryBytes = 0
			continue
		}
		// Budget by measured elapsed time, not the nominal tick: the wheel
		// self-corrects against ticker jitter and scheduling delay so the
		// client's 50 ms samples stay smooth.
		sess.carryBytes += rate * 1e6 * elapsed / 8
		// Bound the burst after a long stall to two ticks of traffic.
		if maxCarry := rate * 1e6 * 2 * paceInterval.Seconds() / 8; sess.carryBytes > maxCarry {
			sess.carryBytes = maxCarry
		}
		s.assemble(sess, peer, at, uint64(now.UnixNano()))
		if sess.v2 && sess.caps&wire.CapReports != 0 {
			if sess.lastReport.IsZero() || now.Sub(sess.lastReport) >= reportInterval {
				sess.lastReport = now
				sess.reportSeq++
				s.appendReport(sess)
			}
		}
	}
	s.flush()
}

// reportInterval is the cadence of per-interval server Reports on v2
// sessions with CapReports active: two client sample windows, so every
// loss computation sees fresh cumulative counters.
const reportInterval = 100 * time.Millisecond

// appendReport queues one control-channel Report carrying the session's
// cumulative paced traffic; it rides the tick's normal batched flush.
//
// swiftvet:hotpath
func (s *Server) appendReport(sess *session) {
	buf := s.pool.get()
	s.bufs = append(s.bufs, buf)
	r := wire.Report{
		SessionID:     sess.id,
		Seq:           sess.reportSeq,
		SentBytes:     sess.sentBytes,
		SentDatagrams: sess.sentDatagrams,
	}
	s.appendMsg(buf, r.AppendTo(buf.b[:0]), sess.ctrlPeer)
}

// assemble drains one session's byte budget into pooled super-buffers:
// whole DatagramSize segments, header-stamped in place, sliced into wire
// messages — one message per buffer chunk under segmentation offload, one
// per datagram on the fallback path. Fault draws key on the same
// (elapsed, seq) pair the per-session pacers used, so fault sequences are
// byte-identical across the refactor.
//
// swiftvet:hotpath
func (s *Server) assemble(sess *session, peer *net.UDPAddr, at time.Duration, sentNS uint64) {
	var buf *pktBuf
	used := 0   // segments stamped into buf
	msgLow := 0 // first unpackaged segment in buf
	d := wire.Data{TestID: sess.testID, SentNS: sentNS}
	d2 := wire.Data2{SessionID: sess.id, SentNS: sentNS}

	for sess.carryBytes >= DatagramSize {
		sess.carryBytes -= DatagramSize
		sess.seq++
		if s.cfg.Faults.DropData(at, uint64(sess.seq)) {
			// Burst loss: the datagram is paced but never hits the wire.
			s.metrics.faultsInjected.Inc()
			continue
		}
		if buf == nil {
			buf = s.pool.get()
			s.bufs = append(s.bufs, buf)
			used, msgLow = 0, 0
		}
		// The two protocol generations share the exact header geometry
		// (DataHeaderLen), so the segment layout, offload setup and buffer
		// arithmetic are version-blind — only the stamp differs.
		if sess.v2 {
			d2.Seq = sess.seq
			d2.EncodeHeader(buf.b[used*DatagramSize:])
		} else {
			d.Seq = sess.seq
			d.EncodeHeader(buf.b[used*DatagramSize:])
		}
		used++
		sess.sentBytes += DatagramSize
		sess.sentDatagrams++
		if !s.gso {
			// One message per datagram; identical bytes, more crossings.
			s.appendMsg(buf, buf.b[(used-1)*DatagramSize:used*DatagramSize], peer)
			msgLow = used
		}
		if used == segsPerBuf {
			if s.gso && used > msgLow {
				s.appendMsg(buf, buf.b[msgLow*DatagramSize:used*DatagramSize], peer)
			}
			buf = nil
		}
	}
	if buf != nil && s.gso && used > msgLow {
		s.appendMsg(buf, buf.b[msgLow*DatagramSize:used*DatagramSize], peer)
	}
}

// appendMsg packages one wire message aliasing a chunk of buf and takes a
// reference on it for the in-flight message.
//
// swiftvet:hotpath
func (s *Server) appendMsg(buf *pktBuf, chunk []byte, addr *net.UDPAddr) {
	buf.retain()
	s.msgs = append(s.msgs, batchio.Message{Buf: chunk, Addr: addr})
	s.msgBufs = append(s.msgBufs, buf)
}

// flush hands the tick's assembled messages to the batched sender and
// settles the books: sent messages feed the byte/datagram counters, unsent
// ones (a partially failed batch) feed send-errors — nothing is dropped
// silently. All buffer references taken during assembly are released here;
// buffers return to the pool once their last message is accounted.
//
// swiftvet:hotpath
func (s *Server) flush() {
	if len(s.msgs) == 0 {
		return
	}
	sent, err := s.bio.SendBatch(s.msgs)
	s.metrics.sendBatches.Inc()
	var okBytes, okDatagrams, failedDatagrams int
	for i := range s.msgs {
		n := len(s.msgs[i].Buf) / DatagramSize
		if i < sent {
			okBytes += len(s.msgs[i].Buf)
			okDatagrams += n
		} else {
			failedDatagrams += n
		}
		s.msgBufs[i].release()
	}
	for _, buf := range s.bufs {
		buf.release()
	}
	s.bytesSent.Add(int64(okBytes))
	s.metrics.datagramsSent.Add(uint64(okDatagrams))
	s.metrics.bytesSent.Add(uint64(okBytes))
	s.metrics.batchDatagrams.Observe(float64(okDatagrams))
	if err != nil && failedDatagrams > 0 && !s.closed.Load() {
		// Transient send failure (e.g. buffer full): count every datagram
		// the batch left unsent and move on, exactly like a lossy link.
		s.metrics.sendErrors.Add(uint64(failedDatagrams))
	}
	s.msgs = s.msgs[:0]
	s.msgBufs = s.msgBufs[:0]
	s.bufs = s.bufs[:0]
}

// retire removes a session from the wheel exactly once, whichever path gets
// there first — client Fin, idle reap, blackout-driven client teardown, or
// server Close. It reports whether this call did the retirement, so the
// caller owns the path-specific accounting (finished vs reaped) without
// double counting.
func (s *Server) retire(sess *session) bool {
	if sess.retired.Swap(true) {
		return false
	}
	s.mu.Lock()
	delete(s.sessions, sess.key)
	if sess.v2 {
		delete(s.byID, sess.id)
		if sess.ctrlPeer != nil {
			delete(s.helloCaps, sess.ctrlPeer.String())
		}
	}
	for i, o := range s.order {
		if o == sess {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.updatePacedGaugeLocked()
	s.mu.Unlock()
	s.metrics.sessionsActive.Dec()
	return true
}
