package transport

import (
	"net"
	"testing"
	"time"
)

func TestBufPoolGetReturnsZeroedSizedBuffer(t *testing.T) {
	p := newBufPool(256, 2)
	buf := p.get()
	if len(buf.b) != 256 {
		t.Fatalf("len = %d, want 256", len(buf.b))
	}
	for i, c := range buf.b {
		if c != 0 {
			t.Fatalf("byte %d = %d, want 0", i, c)
		}
	}
	if got := buf.refs.Load(); got != 1 {
		t.Fatalf("fresh buffer refs = %d, want 1", got)
	}
}

func TestBufPoolRefcountedReuse(t *testing.T) {
	p := newBufPool(64, 1)
	buf := p.get()
	buf.retain() // two holders now
	buf.release()
	if got := p.get(); got == buf {
		t.Fatal("buffer returned to the pool while a reference was still held")
	}
	buf.release() // last reference
	// The freelist is LIFO: the next get must hand the same buffer back.
	for i := 0; i < 2; i++ {
		if got := p.get(); got == buf {
			if got.refs.Load() != 1 {
				t.Fatalf("recycled buffer refs = %d, want 1", got.refs.Load())
			}
			return
		}
	}
	t.Fatal("released buffer never came back from the pool")
}

func TestBufPoolOverReleasePanics(t *testing.T) {
	p := newBufPool(16, 1)
	buf := p.get()
	buf.release()
	defer func() {
		if recover() == nil {
			t.Error("releasing an already-released buffer did not panic")
		}
	}()
	buf.release()
}

func TestBufPoolGrowsBeyondPrealloc(t *testing.T) {
	p := newBufPool(16, 1)
	a, b := p.get(), p.get()
	if a == b {
		t.Fatal("pool handed out the same buffer twice")
	}
	if got := p.grown.Load(); got != 1 {
		t.Errorf("grown = %d, want 1 (one get past the prealloc)", got)
	}
	a.release()
	b.release()
	if got := p.grown.Load(); got != 1 {
		t.Errorf("grown after releases = %d, want 1", got)
	}
}

// addWheelSession registers a synthetic session directly on the server, the
// unit-level counterpart of a TestRequest handshake.
func addWheelSession(srv *Server, testID uint64, peer *net.UDPAddr, rateKbps uint32) *session {
	key := sessionKey{addr: peer.String(), testID: testID}
	sess := &session{key: key, testID: testID}
	sess.peer.Store(peer)
	sess.rateKbps.Store(rateKbps)
	sess.lastSeen.Store(time.Now().UnixNano())
	srv.mu.Lock()
	srv.sessions[key] = sess
	srv.order = append(srv.order, sess)
	srv.mu.Unlock()
	srv.metrics.sessionsActive.Inc()
	return sess
}

// TestWheelAdvanceZeroAllocs is the hot-path budget the swiftvet hotpath
// annotations gate between benchmark runs: once the scratch slices and the
// buffer pool are warm, a wheel tick — budget, assemble, batch send —
// performs zero heap allocations per packet on both syscall paths.
func TestWheelAdvanceZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode WireMode
	}{
		{"batched", WireAuto},
		{"fallback", WireFallback},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
			if err != nil {
				t.Fatal(err)
			}
			defer sink.Close()
			srv, err := newServer("127.0.0.1:0",
				ServerConfig{UplinkMbps: 100, Wire: tc.mode, startedAt: identityBase}, false)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			_ = srv.conn.SetWriteBuffer(8 << 20)
			addWheelSession(srv, 1, sink.LocalAddr().(*net.UDPAddr), 50000)

			now := identityBase
			tick := func() {
				now = now.Add(paceInterval)
				srv.advance(now)
			}
			for i := 0; i < 50; i++ {
				tick() // warm the scratch slices and the buffer pool
			}
			if allocs := testing.AllocsPerRun(200, tick); allocs != 0 {
				t.Errorf("advance allocates %.2f per tick (~26 datagrams), want 0", allocs)
			}
		})
	}
}
