package transport

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/mobilebandwidth/swiftest/internal/core"
	"github.com/mobilebandwidth/swiftest/internal/errdefs"
	"github.com/mobilebandwidth/swiftest/internal/faults"
	"github.com/mobilebandwidth/swiftest/internal/gmm"
	"github.com/mobilebandwidth/swiftest/internal/obs"
)

// startFaultyPool starts n loopback servers sharing one fault plan, each
// bound to its pool index, and returns the ranked-order pool (configured
// order; no ping round, so indexes stay aligned with the plan).
func startFaultyPool(t *testing.T, n int, uplink float64, plan *faults.Plan) *ServerPool {
	t.Helper()
	inj := plan.Injector()
	pool := &ServerPool{}
	for i := 0; i < n; i++ {
		s := startServer(t, ServerConfig{
			UplinkMbps: uplink,
			Faults:     &faults.Binding{Inj: inj, Server: i},
		})
		pool.Servers = append(pool.Servers, PoolServer{Addr: s.Addr().String(), UplinkMbps: uplink})
	}
	return pool
}

// TestLoopbackBlackoutFailover is the wire-level acceptance scenario: one of
// three loopback servers blacks out mid-test; the client detects the dead
// session, redistributes, and the run finishes degraded with the loss
// recorded in the trace and the client metric.
func TestLoopbackBlackoutFailover(t *testing.T) {
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.Blackout, Server: 1, AtMS: 900},
	}}
	pool := startFaultyPool(t, 3, 25, plan)

	reg := obs.NewRegistry()
	tr := obs.NewTrace(0)
	probe, err := NewUDPProbe(pool, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	probe.SetTrace(tr)
	probe.SetMetrics(reg)

	// One 60 Mbps mode: the probe needs all three 25 Mbps servers.
	model := gmm.MustNew(gmm.Component{Weight: 1, Mu: 60, Sigma: 6})
	res, err := core.Run(probe, core.Config{Model: model, MaxDuration: 4 * time.Second, Trace: tr})
	probe.Finish(res.Bandwidth, res.Duration)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServersUsed != 3 || res.ServersLost != 1 || !res.Degraded {
		t.Fatalf("health = used %d lost %d degraded %v, want 3/1/true",
			res.ServersUsed, res.ServersLost, res.Degraded)
	}
	lostEvents := 0
	for _, e := range tr.Events() {
		if e.Kind == obs.EventServerLost {
			lostEvents++
			if e.Note != pool.Servers[1].Addr {
				t.Errorf("server_lost names %q, want %q", e.Note, pool.Servers[1].Addr)
			}
		}
	}
	if lostEvents != 1 {
		t.Errorf("server_lost events = %d, want 1", lostEvents)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["swiftest_client_sessions_lost_total"]; got != 1 {
		t.Errorf("swiftest_client_sessions_lost_total = %d, want 1", got)
	}
	if res.Bandwidth <= 0 {
		t.Error("degraded run produced no bandwidth estimate")
	}
}

// TestLoopbackHandshakeDropRetries: a handshake-drop window forces the
// client through its bounded retry loop before the session opens.
func TestLoopbackHandshakeDropRetries(t *testing.T) {
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.HandshakeDrop, Server: 0, AtMS: 0, DurationMS: 300},
	}}
	pool := startFaultyPool(t, 1, 50, plan)

	reg := obs.NewRegistry()
	tr := obs.NewTrace(0)
	probe, err := NewUDPProbe(pool, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	probe.SetTrace(tr)
	probe.SetMetrics(reg)
	defer probe.Finish(0, 0)

	if err := probe.SetRate(10); err != nil {
		t.Fatalf("SetRate through a 300 ms handshake-drop window: %v", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["swiftest_client_handshake_retries_total"]; got == 0 {
		t.Error("no handshake retry recorded despite the drop window")
	}
	retries := 0
	for _, e := range tr.Events() {
		if e.Kind == obs.EventServerRetry {
			retries++
		}
	}
	if retries == 0 {
		t.Error("no server_retry trace event")
	}
}

// TestPongDelayInflatesRTT: a pong-delay fault must show up in the ping
// measurement — the lever the selection tests use to force an ordering.
func TestPongDelayInflatesRTT(t *testing.T) {
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.PongDelay, Server: 0, AtMS: 0, DelayMS: 100},
	}}
	pool := startFaultyPool(t, 1, 50, plan)
	rtt, err := PingServer(pool.Servers[0].Addr, 2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rtt < 100*time.Millisecond {
		t.Errorf("RTT %v through a 100 ms pong delay", rtt)
	}
}

// TestRankByLatencyDeterministicOrder: with a pong delay pinning one
// server's RTT far above the other's, the concurrent ranking must produce
// the same order on every run.
func TestRankByLatencyDeterministicOrder(t *testing.T) {
	plan := &faults.Plan{Faults: []faults.Fault{
		{Kind: faults.PongDelay, Server: 0, AtMS: 0, DelayMS: 120},
	}}
	inj := plan.Injector()
	slow := startServer(t, ServerConfig{Faults: &faults.Binding{Inj: inj, Server: 0}})
	fast := startServer(t, ServerConfig{})
	for round := 0; round < 3; round++ {
		pool := &ServerPool{Servers: []PoolServer{
			{Addr: slow.Addr().String(), UplinkMbps: 50},
			{Addr: fast.Addr().String(), UplinkMbps: 50},
		}}
		if err := pool.RankByLatency(2, time.Second); err != nil {
			t.Fatal(err)
		}
		if pool.Servers[0].Addr != fast.Addr().String() {
			t.Fatalf("round %d: delayed server ranked first", round)
		}
	}
}

// TestPingErrorsAreStructured: ping failures carry both the sentinel and
// the typed server wrapper.
func TestPingErrorsAreStructured(t *testing.T) {
	_, err := PingServer("127.0.0.1:1", 1, 50*time.Millisecond)
	if !errors.Is(err, errdefs.ErrProbeTimeout) {
		t.Errorf("err = %v, want ErrProbeTimeout in the chain", err)
	}
	var se *errdefs.ServerError
	if !errors.As(err, &se) || se.Addr != "127.0.0.1:1" || se.Op != "ping" {
		t.Errorf("err = %v, want *ServerError{Addr:127.0.0.1:1, Op:ping}", err)
	}
}

// TestRankByLatencyContextCancelled: an already-cancelled context aborts
// ranking with the abort sentinel.
func TestRankByLatencyContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pool := &ServerPool{Servers: []PoolServer{{Addr: "127.0.0.1:1", UplinkMbps: 50}}}
	err := pool.RankByLatencyContext(ctx, 1, 50*time.Millisecond)
	if !errors.Is(err, errdefs.ErrTestAborted) {
		t.Errorf("err = %v, want ErrTestAborted", err)
	}
}

// TestRankByLatencyNoReachableSentinel: total unreachability reports the
// dedicated sentinel.
func TestRankByLatencyNoReachableSentinel(t *testing.T) {
	pool := &ServerPool{Servers: []PoolServer{{Addr: "127.0.0.1:1", UplinkMbps: 50}}}
	err := pool.RankByLatency(1, 50*time.Millisecond)
	if !errors.Is(err, errdefs.ErrNoReachableServer) {
		t.Errorf("err = %v, want ErrNoReachableServer", err)
	}
}

// TestProbeContextCancelStopsSampling: cancelling the probe's context makes
// NextSample return promptly with !ok instead of sleeping out the window.
func TestProbeContextCancelStopsSampling(t *testing.T) {
	s := startServer(t, ServerConfig{})
	pool := &ServerPool{Servers: []PoolServer{{Addr: s.Addr().String(), UplinkMbps: 50}}}
	ctx, cancel := context.WithCancel(context.Background())
	probe, err := NewUDPProbeContext(ctx, pool, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Finish(0, 0)
	if err := probe.SetRate(5); err != nil {
		t.Fatal(err)
	}
	cancel()
	start := time.Now()
	if _, ok := probe.NextSample(); ok {
		// The first boundary may already have elapsed; the second wait
		// must observe the cancellation.
		if _, ok := probe.NextSample(); ok {
			t.Error("NextSample kept sampling after cancellation")
		}
	}
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("cancelled NextSample blocked %v", waited)
	}
}
