package transport

import (
	"net"
	"time"

	"github.com/mobilebandwidth/swiftest/internal/wire"
)

// Protocol v2 server side: the control/data channel split.
//
// Both channels arrive on the one server socket — the split is on the
// client, which uses two sockets so probe floods never queue behind control
// traffic. The server tells them apart by session ID: Setup registers the
// session under the control-channel address, DataOpen (sent from the
// client's data socket, hence a different source port) binds the pacing
// destination. Until DataOpen lands the wheel paces nothing for the
// session.

// handleV2 dispatches one protocol-v2 control or data-channel datagram.
// peer points into reused batch storage — handlers that keep it clone it.
func (s *Server) handleV2(typ wire.Type, pkt []byte, peer *net.UDPAddr, out []byte) []byte {
	switch typ {
	case wire.TypeHello:
		var h wire.Hello
		if h.Decode(pkt) != nil {
			return out
		}
		if h.MinVersion > wire.Version2 || h.MaxVersion < wire.Version2 {
			return out // no common version; the client falls back or gives up
		}
		caps := h.Caps & wire.ServerCaps
		s.mu.Lock()
		s.helloCaps[peer.String()] = caps
		s.mu.Unlock()
		ack := wire.HelloAck{Version: wire.Version2, Caps: caps, Nonce: h.Nonce}
		s.sendControl(ack.AppendTo(out), peer)

	case wire.TypeSetup:
		var setup wire.Setup
		if setup.Decode(pkt) != nil {
			return out
		}
		if s.dropV2Handshake(setup.SessionID, peer) {
			s.metrics.faultsInjected.Inc()
			return out
		}
		if s.cfg.AuthKey != 0 {
			// Forged and stale tokens share the RejectAuth path: the MAC
			// covers the expiry deadline, so a client cannot stretch a lease
			// by rewriting it.
			expired := setup.Token.ExpiredAt(uint64(time.Now().UnixMilli()))
			if !setup.Token.Verify(s.cfg.AuthKey) || expired {
				s.metrics.authRejects.Inc()
				s.logf("session auth rejected", "peer", peer.String(),
					"session_id", setup.SessionID, "expired", expired)
				rej := wire.SetupReject{SessionID: setup.SessionID, Code: wire.RejectAuth}
				s.sendControl(rej.AppendTo(out), peer)
				return out
			}
		}
		if !s.handleSetup(&setup, peer) {
			rej := wire.SetupReject{SessionID: setup.SessionID, Code: wire.RejectBusy}
			s.sendControl(rej.AppendTo(out), peer)
			return out
		}
		ack := wire.SetupAck{
			SessionID:        setup.SessionID,
			Caps:             s.capsFor(peer),
			ReportIntervalMS: uint32(reportInterval.Milliseconds()),
		}
		s.sendControl(ack.AppendTo(out), peer)

	case wire.TypeDataOpen:
		var do wire.DataOpen
		if do.Decode(pkt) != nil {
			return out
		}
		s.mu.Lock()
		sess := s.byID[do.SessionID]
		s.mu.Unlock()
		if sess == nil {
			return out // no such session; the client's setup never landed
		}
		// Re-binds are idempotent (DataOpen retransmits) and also cover a
		// client whose NAT rebound the data socket mid-handshake.
		sess.peer.Store(cloneUDPAddr(peer))
		sess.lastSeen.Store(time.Now().UnixNano())
		ack := wire.DataOpenAck{SessionID: do.SessionID}
		s.sendControl(ack.AppendTo(out), peer)

	case wire.TypeRate2:
		var r wire.Rate2
		if r.Decode(pkt) != nil {
			return out
		}
		s.mu.Lock()
		sess := s.byID[r.SessionID]
		s.mu.Unlock()
		if sess != nil {
			s.applyRate(sess, r.RateKbps, r.Seq)
		}

	case wire.TypeBye:
		var bye wire.Bye
		if bye.Decode(pkt) != nil {
			return out
		}
		s.mu.Lock()
		sess := s.byID[bye.SessionID]
		s.mu.Unlock()
		if sess != nil && s.retire(sess) {
			s.metrics.sessionsFinished.Inc()
			s.metrics.resultMbps.Observe(wire.MbpsFromKbps(bye.ResultKbps))
			if s.cfg.OnResult != nil {
				s.cfg.OnResult(wire.MbpsFromKbps(bye.ResultKbps))
			}
			s.logf("test finished", "peer", peer.String(), "session_id", bye.SessionID,
				"result_mbps", wire.MbpsFromKbps(bye.ResultKbps),
				"trimmed_mbps", wire.MbpsFromKbps(bye.TrimmedKbps),
				"peak_mbps", wire.MbpsFromKbps(bye.PeakKbps),
				"regime", bye.Regime)
		}
		// Always ack, even for an unknown or already-retired session — the
		// client may be retransmitting a Bye whose first ack was lost.
		ack := wire.ByeAck{SessionID: bye.SessionID}
		s.sendControl(ack.AppendTo(out), peer)
	}
	return out
}

// capsFor reads the capability set negotiated by the peer's last Hello,
// defaulting to the full server set when the Hello was lost or skipped.
func (s *Server) capsFor(peer *net.UDPAddr) uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if caps, ok := s.helloCaps[peer.String()]; ok {
		return caps
	}
	return wire.ServerCaps
}

// handleSetup registers a v2 session. Reports whether the session exists
// (created now, or an idempotent duplicate Setup); false means a session-ID
// collision with another client.
func (s *Server) handleSetup(setup *wire.Setup, peer *net.UDPAddr) bool {
	key := sessionKey{addr: peer.String(), testID: setup.SessionID}
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing := s.byID[setup.SessionID]; existing != nil {
		return existing.key == key // duplicate Setup re-acked; foreign ID rejected
	}
	caps := wire.ServerCaps
	if c, ok := s.helloCaps[peer.String()]; ok {
		caps = c
	}
	sess := &session{
		key:      key,
		testID:   setup.SessionID,
		v2:       true,
		id:       setup.SessionID,
		caps:     caps,
		ctrlPeer: cloneUDPAddr(peer),
	}
	granted := s.clampRateLocked(setup.RateKbps, nil)
	if granted < setup.RateKbps {
		s.metrics.rateClamped.Inc()
	}
	sess.rateKbps.Store(granted)
	sess.lastSeen.Store(time.Now().UnixNano())
	s.sessions[key] = sess
	s.byID[setup.SessionID] = sess
	s.order = append(s.order, sess)
	s.metrics.sessionsStarted.Inc()
	s.metrics.v2Sessions.Inc()
	s.metrics.sessionsActive.Inc()
	s.updatePacedGaugeLocked()
	s.logf("v2 test started", "peer", peer.String(), "session_id", setup.SessionID,
		"rate_mbps", wire.MbpsFromKbps(setup.RateKbps))
	return true
}

// applyRate applies one rate update to a session with the shared
// stale-rejection and uplink-clamp rules — the v2 counterpart of
// handleRateSet, operating on an already-resolved session.
func (s *Server) applyRate(sess *session, kbps, seq uint32) {
	s.mu.Lock()
	clamped := s.clampRateLocked(kbps, sess)
	s.mu.Unlock()
	// Ignore stale (reordered) rate updates.
	for {
		cur := sess.rateSeq.Load()
		if seq <= cur && cur != 0 {
			return
		}
		if sess.rateSeq.CompareAndSwap(cur, seq) {
			break
		}
	}
	if clamped < kbps {
		s.metrics.rateClamped.Inc()
	}
	sess.rateKbps.Store(clamped)
	sess.lastSeen.Store(time.Now().UnixNano())
	s.mu.Lock()
	s.updatePacedGaugeLocked()
	s.mu.Unlock()
}

// dropV2Handshake consults the fault plan for one Setup datagram, numbering
// retransmissions per (peer, session) like the v1 handshake path.
func (s *Server) dropV2Handshake(sessionID uint64, peer *net.UDPAddr) bool {
	if s.cfg.Faults == nil {
		return false
	}
	key := sessionKey{addr: peer.String(), testID: sessionID}
	s.mu.Lock()
	attempt := s.hsAttempts[key]
	s.hsAttempts[key] = attempt + 1
	s.mu.Unlock()
	return s.cfg.Faults.DropHandshake(s.elapsed(), attempt)
}
