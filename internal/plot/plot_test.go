package plot

import (
	"strings"
	"testing"
	"unicode/utf8"

	"github.com/mobilebandwidth/swiftest/internal/stats"
)

func TestBar(t *testing.T) {
	if got := Bar(50, 100, 10); utf8.RuneCountInString(got) != 5 {
		t.Errorf("Bar(50,100,10) = %q", got)
	}
	if got := Bar(200, 100, 10); utf8.RuneCountInString(got) != 10 {
		t.Errorf("overflow not clamped: %q", got)
	}
	if got := Bar(0.1, 100, 10); utf8.RuneCountInString(got) != 1 {
		t.Errorf("tiny positive value should render one block: %q", got)
	}
	if Bar(0, 100, 10) != "" || Bar(5, 0, 10) != "" || Bar(5, 10, 0) != "" {
		t.Error("degenerate inputs should render empty")
	}
}

func TestBarChart(t *testing.T) {
	c := BarChart{
		Rows: []BarRow{{"N78", 332}, {"N1", 103}},
		Unit: "Mbps",
	}
	out := c.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	if !strings.Contains(lines[0], "N78") || !strings.Contains(lines[0], "332.0 Mbps") {
		t.Errorf("row: %q", lines[0])
	}
	// The larger value must have the longer bar.
	if strings.Count(lines[0], "█") <= strings.Count(lines[1], "█") {
		t.Error("bar lengths not ordered by value")
	}
	if (BarChart{}).Render() != "" {
		t.Error("empty chart should render empty")
	}
}

func TestSparkline(t *testing.T) {
	got := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if utf8.RuneCountInString(got) != 8 {
		t.Fatalf("length = %d, want 8", utf8.RuneCountInString(got))
	}
	runes := []rune(got)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("extremes wrong: %q", got)
	}
	if Sparkline(nil) != "" {
		t.Error("empty input should render empty")
	}
	flat := Sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat input should render the lowest glyph: %q", flat)
		}
	}
}

func TestCDFGrid(t *testing.T) {
	s := stats.NewSample([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	out := CDF(s.CDF(50), 40, 10)
	if out == "" {
		t.Fatal("empty render")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 11 { // height rows + axis
		t.Fatalf("lines = %d, want 11", len(lines))
	}
	if !strings.Contains(out, "*") {
		t.Error("no points plotted")
	}
	if !strings.HasPrefix(lines[0], "1.00") || !strings.HasPrefix(lines[9], "0.00") {
		t.Errorf("y-axis labels wrong: %q / %q", lines[0], lines[9])
	}
	if !strings.Contains(lines[10], "100") {
		t.Errorf("x-axis max missing: %q", lines[10])
	}
	if CDF(nil, 40, 10) != "" {
		t.Error("empty points should render empty")
	}
}
