// Package plot renders small terminal charts — bars, sparklines, and CDF
// grids — for the CLIs' reports (cmd/analyze, cmd/btsbench). The paper's
// figures are line/bar charts; these renderings make the regenerated data
// legible without leaving the terminal.
package plot

import (
	"fmt"
	"math"
	"strings"

	"github.com/mobilebandwidth/swiftest/internal/stats"
)

// Bar renders one horizontal bar scaled so that maxValue fills width runes.
func Bar(value, maxValue float64, width int) string {
	if width <= 0 || maxValue <= 0 || value <= 0 {
		return ""
	}
	n := int(math.Round(value / maxValue * float64(width)))
	if n > width {
		n = width
	}
	if n <= 0 && value > 0 {
		n = 1
	}
	return strings.Repeat("█", n)
}

// BarChart renders labelled horizontal bars with values, one row per entry.
type BarChart struct {
	Rows []BarRow
	// Width is the bar width in runes; zero selects 40.
	Width int
	// Unit is appended to each value (e.g. "Mbps").
	Unit string
}

// BarRow is one labelled value.
type BarRow struct {
	Label string
	Value float64
}

// Render draws the chart.
func (b BarChart) Render() string {
	if len(b.Rows) == 0 {
		return ""
	}
	width := b.Width
	if width <= 0 {
		width = 40
	}
	var maxV float64
	labelW := 0
	for _, r := range b.Rows {
		maxV = math.Max(maxV, r.Value)
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	var sb strings.Builder
	for _, r := range b.Rows {
		fmt.Fprintf(&sb, "%-*s %8.1f %s %s\n", labelW, r.Label, r.Value, b.Unit, Bar(r.Value, maxV, width))
	}
	return sb.String()
}

// sparkRunes are the eight block glyphs of a sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a one-line sparkline scaled to the data range.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var sb strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// CDF renders an empirical CDF as an ASCII grid of the given size: X spans
// [0, max], Y spans [0, 1]. Points are the cumulative fractions from
// stats.Sample.CDF.
func CDF(points []stats.CDFPoint, width, height int) string {
	if len(points) == 0 || width <= 0 || height <= 0 {
		return ""
	}
	maxX := points[len(points)-1].X
	if maxX <= 0 {
		return ""
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range points {
		col := int(p.X / maxX * float64(width-1))
		rowFromBottom := int(p.F * float64(height-1))
		row := height - 1 - rowFromBottom
		if col >= 0 && col < width && row >= 0 && row < height {
			grid[row][col] = '*'
		}
	}
	var sb strings.Builder
	for i, row := range grid {
		frac := 1 - float64(i)/float64(height-1)
		fmt.Fprintf(&sb, "%4.2f |%s|\n", frac, string(row))
	}
	fmt.Fprintf(&sb, "      0%s%.0f\n", strings.Repeat(" ", width-len(fmt.Sprintf("%.0f", maxX))), maxX)
	return sb.String()
}
