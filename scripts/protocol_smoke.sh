#!/usr/bin/env bash
# Protocol interop smoke: the CI gate for the two-generation wire protocol.
#
#  1. A current (dual-stack) server serves a v1-pinned client — the legacy
#     single-socket protocol still works against new servers.
#  2. v2 <-> v2 completes under each wire mode (batched and fallback), and
#     the run-record carries the v2 schema with the estimator/regime tail.
#  3. A ProtoAuto client against the same server negotiates v2.
#  4. A keyed server refuses an untokened v2 client — observable in both the
#     exit status and the auth-reject counter — and admits a tokened one.
#
# All listeners bind ephemeral ports; addresses are scraped from logs.
set -euo pipefail

WORK="$(mktemp -d)"
trap 'kill ${PIDS:-} 2>/dev/null || true; rm -rf "$WORK"' EXIT
PIDS=

go build -o "$WORK/swiftest" ./cmd/swiftest

# start_server <logfile> <extra flags...>; echoes "serve_addr metrics_addr"
start_server() {
  local log="$1"; shift
  "$WORK/swiftest" serve -addr 127.0.0.1:0 -uplink 100 -metrics 127.0.0.1:0 "$@" \
    > "$log" 2>&1 &
  local pid=$!
  PIDS="$PIDS $pid"
  local serve= metrics=
  for i in $(seq 1 50); do
    serve="$(sed -n 's/^swiftest server listening on \([^ ]*\).*/\1/p' "$log")"
    metrics="$(sed -n 's|^metrics on http://\([^/]*\)/metrics.*|\1|p' "$log")"
    [ -n "$serve" ] && [ -n "$metrics" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "server exited before logging its addresses:" >&2
      cat "$log" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [ -z "$serve" ] || [ -z "$metrics" ]; then
    echo "could not parse listen addresses from $log:" >&2
    cat "$log" >&2
    exit 1
  fi
  echo "$serve $metrics"
}

run_test() { # run_test <outfile> <args...>
  local out="$1"; shift
  "$WORK/swiftest" test -max 2s "$@" > "$out" 2>"$out.err"
}

expect_proto() { # expect_proto <outfile> <v1|v2> <label>
  grep -q "^protocol  : $2\$" "$1" || {
    echo "$3: expected negotiated protocol $2:" >&2
    cat "$1" >&2
    exit 1
  }
}

# --- 1-3: open dual-stack server, both wire modes ---------------------------
for mode in auto fallback; do
  read -r ADDR METRICS <<< "$(start_server "$WORK/serve-$mode.log" -wire "$mode")"

  run_test "$WORK/v1-$mode.txt" -servers "$ADDR@100" -protocol v1
  expect_proto "$WORK/v1-$mode.txt" v1 "v1 client, $mode server"

  run_test "$WORK/v2-$mode.txt" -servers "$ADDR@100" -protocol v2 \
    -trace "$WORK/v2-$mode.jsonl"
  expect_proto "$WORK/v2-$mode.txt" v2 "v2 client, $mode server"

  run_test "$WORK/auto-$mode.txt" -servers "$ADDR@100"
  expect_proto "$WORK/auto-$mode.txt" v2 "auto client, $mode server"

  head -1 "$WORK/v2-$mode.jsonl" | grep -q '"schema":"swiftest-run-record/v2"' || {
    echo "run-record header missing the v2 schema tag ($mode):" >&2
    head -1 "$WORK/v2-$mode.jsonl" >&2
    exit 1
  }
  for kind in estimate bdp_regime; do
    grep -q "\"kind\":\"$kind\"" "$WORK/v2-$mode.jsonl" || {
      echo "run-record missing $kind event ($mode)" >&2
      exit 1
    }
  done

  # The server saw exactly the sessions we opened, and the v2 ones as v2.
  curl -fsS "http://$METRICS/metrics" > "$WORK/metrics-$mode.txt"
  grep -q '^swiftest_server_v2_sessions_total 2' "$WORK/metrics-$mode.txt" || {
    echo "expected 2 v2 sessions on the $mode server:" >&2
    grep '^swiftest_server_\(v2_\)\?sessions' "$WORK/metrics-$mode.txt" >&2
    exit 1
  }
done

# --- 4: lease-auth rejection ------------------------------------------------
KEY=5857300629132885844   # arbitrary non-zero deployment key
read -r ADDR METRICS <<< "$(start_server "$WORK/serve-keyed.log" -authkey "$KEY")"

if run_test "$WORK/noauth.txt" -servers "$ADDR@100" -protocol v2; then
  echo "untokened v2 client was admitted by a keyed server:" >&2
  cat "$WORK/noauth.txt" >&2
  exit 1
fi
grep -q "auth" "$WORK/noauth.txt.err" || {
  echo "rejection did not name auth:" >&2
  cat "$WORK/noauth.txt.err" >&2
  exit 1
}
curl -fsS "http://$METRICS/metrics" > "$WORK/metrics-keyed.txt"
REJECTS="$(sed -n 's/^swiftest_server_auth_rejects_total \([0-9]*\)$/\1/p' "$WORK/metrics-keyed.txt")"
if [ -z "$REJECTS" ] || [ "$REJECTS" -lt 1 ]; then
  echo "auth-reject counter did not move:" >&2
  grep '^swiftest_server_auth' "$WORK/metrics-keyed.txt" >&2 || true
  exit 1
fi

TOKEN="$("$WORK/swiftest" token -authkey "$KEY" -server 0 -seq 1)"
run_test "$WORK/auth.txt" -servers "$ADDR@100" -protocol v2 -token "$TOKEN"
expect_proto "$WORK/auth.txt" v2 "tokened client, keyed server"

# A v1 client has no token field and must still be served by a keyed server.
run_test "$WORK/v1-keyed.txt" -servers "$ADDR@100" -protocol v1
expect_proto "$WORK/v1-keyed.txt" v1 "v1 client, keyed server"

echo "protocol smoke passed: v1 fallback, v2 on both wire modes, auth rejects=$REJECTS"
