#!/usr/bin/env bash
# Fleet dispatch smoke: plan a small fleet with deployplan, boot the dispatch
# control plane from the JSON artifact, register three real loopback servers
# against it, dispatch a client test through it, then black out one server via
# its fault plan and assert the control plane detects the death (K silent
# heartbeat windows -> server_dead) and dispatches subsequent clients to the
# survivors.
#
# Every listener binds an ephemeral port (:0); actual addresses come from the
# process logs.
set -euo pipefail

WORK="$(mktemp -d)"
PIDS=()
trap 'for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$WORK"' EXIT

go build -o "$WORK/swiftest" ./cmd/swiftest
go build -o "$WORK/deployplan" ./cmd/deployplan

# --- Plan: a 3-server fleet from the §5.2 planner ---------------------------
"$WORK/deployplan" -tests-per-day 20000 -avg-bandwidth 100 -min-servers 3 \
  -json "$WORK/plan.json" > "$WORK/plan.out"
grep -q '"schema": "swiftest-deploy-plan/v1"' "$WORK/plan.json" || {
  echo "deployplan artifact missing schema tag" >&2
  cat "$WORK/plan.json" >&2
  exit 1
}

# --- Control plane from the artifact ----------------------------------------
"$WORK/swiftest" dispatch -plan "$WORK/plan.json" -addr 127.0.0.1:0 -v \
  > "$WORK/dispatch.log" 2>&1 &
PIDS+=($!)
DISPATCH_PID=$!

DISPATCH=
for _ in $(seq 1 50); do
  DISPATCH="$(sed -n 's|^fleet dispatch on http://\([^ ]*\).*|\1|p' "$WORK/dispatch.log")"
  [ -n "$DISPATCH" ] && break
  if ! kill -0 "$DISPATCH_PID" 2>/dev/null; then
    echo "dispatch exited at startup:" >&2; cat "$WORK/dispatch.log" >&2; exit 1
  fi
  sleep 0.1
done
[ -n "$DISPATCH" ] || { echo "no dispatch address logged" >&2; cat "$WORK/dispatch.log" >&2; exit 1; }

# --- Three registered loopback servers; server 0 will black out at t=6s -----
cat > "$WORK/faults.json" <<'EOF'
{"faults": [{"kind": "blackout", "server": 0, "at_ms": 6000, "duration_ms": 600000}]}
EOF

DOMAINS=(Beijing Shanghai Guangzhou)
SERVER_ADDRS=()
for i in 0 1 2; do
  extra=()
  if [ "$i" -eq 0 ]; then
    extra=(-faults "$WORK/faults.json" -fault-server 0)
  fi
  "$WORK/swiftest" serve -addr 127.0.0.1:0 -uplink 25 \
    -register "http://$DISPATCH" -domain "${DOMAINS[$i]}" "${extra[@]}" \
    > "$WORK/serve$i.log" 2>&1 &
  PIDS+=($!)
done

# Wait until all three have registered and answer pings.
for i in 0 1 2; do
  addr=
  for _ in $(seq 1 50); do
    addr="$(sed -n 's/^swiftest server listening on \([^ ]*\).*/\1/p' "$WORK/serve$i.log")"
    if [ -n "$addr" ] && grep -q '^registered with' "$WORK/serve$i.log"; then
      break
    fi
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "server $i never came up:" >&2; cat "$WORK/serve$i.log" >&2; exit 1; }
  SERVER_ADDRS+=("$addr")
  "$WORK/swiftest" ping -servers "$addr" -count 1 -timeout 500ms >/dev/null
done
grep -c '^register server=' "$WORK/dispatch.log" | grep -q '^3$' || {
  echo "dispatch did not log 3 registrations:" >&2; cat "$WORK/dispatch.log" >&2; exit 1
}

# --- Pre-kill: a dispatched client test completes ---------------------------
"$WORK/swiftest" test -dispatch "http://$DISPATCH" -key 1 -domain Beijing \
  -max 2s -timeout 10s > "$WORK/test1.out" 2>&1 || {
  echo "pre-kill dispatched test failed:" >&2; cat "$WORK/test1.out" >&2; exit 1
}
grep -q '^bandwidth' "$WORK/test1.out" || { cat "$WORK/test1.out" >&2; exit 1; }
grep -q '^assign client=1' "$WORK/dispatch.log" || {
  echo "dispatch never logged the assignment:" >&2; cat "$WORK/dispatch.log" >&2; exit 1
}

# --- Kill: the blackout silences server 0's heartbeats ----------------------
# K silent windows after the 6s mark the control plane must declare it dead.
DEAD_LINE=
for _ in $(seq 1 120); do
  DEAD_LINE="$(grep '^server_dead' "$WORK/dispatch.log" | head -1 || true)"
  [ -n "$DEAD_LINE" ] && break
  sleep 0.25
done
[ -n "$DEAD_LINE" ] || {
  echo "control plane never declared the blacked-out server dead:" >&2
  cat "$WORK/dispatch.log" >&2
  exit 1
}
DEAD_ADDR="$(sed -n 's/.*addr=\([^ ]*\).*/\1/p' <<<"$DEAD_LINE")"
echo "declared dead: $DEAD_ADDR"

# --- Post-kill: clients are dispatched to the survivors ---------------------
"$WORK/swiftest" test -dispatch "http://$DISPATCH" -key 2 -domain Beijing \
  -max 2s -timeout 10s > "$WORK/test2.out" 2>&1 || {
  echo "post-kill dispatched test failed:" >&2; cat "$WORK/test2.out" >&2; exit 1
}
NEW_PRIMARY="$(sed -n 's/^dispatched to \([^ ]*\).*/\1/p' "$WORK/test2.out")"
[ -n "$NEW_PRIMARY" ] || { cat "$WORK/test2.out" >&2; exit 1; }
if [ "$NEW_PRIMARY" = "$DEAD_ADDR" ]; then
  echo "post-kill client was dispatched to the dead server $DEAD_ADDR" >&2
  cat "$WORK/dispatch.log" >&2
  exit 1
fi

# The dead server must be gone from the live pool.
curl -fsS "http://$DISPATCH/servers" | grep -q '"State":3' || {
  echo "no server in state dead on /servers" >&2
  curl -fsS "http://$DISPATCH/servers" >&2
  exit 1
}
# And the fleet metrics must agree.
curl -fsS "http://$DISPATCH/metrics" > "$WORK/metrics.txt"
grep -q '^swiftest_fleet_servers_dead 1' "$WORK/metrics.txt" || {
  echo "metrics do not show one dead server:" >&2
  grep '^swiftest_fleet' "$WORK/metrics.txt" >&2
  exit 1
}
grep -q '^swiftest_fleet_assignments_total' "$WORK/metrics.txt" || {
  echo "missing swiftest_fleet_assignments_total" >&2; exit 1
}

echo "fleet smoke passed: dead=$DEAD_ADDR, post-kill client went to $NEW_PRIMARY"
