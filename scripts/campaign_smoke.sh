#!/usr/bin/env bash
# Scenario campaign smoke: the RAN profile sweep must cover the whole
# embedded library against multiple algorithms and fault plans, the
# swiftest-campaign-report/v1 JSON must be byte-identical across reruns and
# worker counts, and the throughput emitter must produce BENCH_scenarios.json.
set -euo pipefail

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# --- Leg 1: benchmark emitter ------------------------------------------------
# The emitter sweeps the full profile library in virtual time and writes the
# machine-readable throughput report CI archives.
BENCH_SCENARIOS_OUT="$WORK/BENCH_scenarios.json" \
  go test -run TestEmitBenchScenarios .

[ -s "$WORK/BENCH_scenarios.json" ] || {
  echo "BENCH_scenarios.json was not written" >&2
  exit 1
}
cat "$WORK/BENCH_scenarios.json"

field() {
  grep -o "\"$1\": [0-9.]*" "$WORK/BENCH_scenarios.json" | awk '{print $2}'
}

profiles="$(field profiles)"
algs="$(field algorithms)"
plans="$(field fault_plans)"
awk -v p="$profiles" -v a="$algs" -v f="$plans" \
  'BEGIN { exit (p >= 8 && a >= 2 && f >= 2) ? 0 : 1 }' || {
  echo "campaign sweep too small: $profiles profiles x $algs algs x $plans fault plans, want >=8 x >=2 x >=2" >&2
  exit 1
}
echo "campaign bench gate passed: $profiles profiles x $algs algs x $plans fault plans"

# --- Leg 2: CLI determinism --------------------------------------------------
# The same (config, seed) must produce byte-identical reports regardless of
# worker count — the whole point of the fixed cell list + per-cell seeding.
go build -o "$WORK/swiftest" ./cmd/swiftest

"$WORK/swiftest" campaign -runs 1 -seed 42 -workers 1 -json "$WORK/w1.json" \
  > "$WORK/table.txt"
"$WORK/swiftest" campaign -runs 1 -seed 42 -workers 8 -json "$WORK/w8.json" \
  > /dev/null
"$WORK/swiftest" campaign -runs 1 -seed 42 -workers 8 -json "$WORK/w8b.json" \
  > /dev/null

cmp "$WORK/w1.json" "$WORK/w8.json" || {
  echo "campaign report differs between -workers 1 and -workers 8" >&2
  exit 1
}
cmp "$WORK/w8.json" "$WORK/w8b.json" || {
  echo "campaign report differs across reruns at the same worker count" >&2
  exit 1
}

grep -q '"schema": "swiftest-campaign-report/v1"' "$WORK/w1.json" || {
  echo "campaign JSON is missing the swiftest-campaign-report/v1 schema tag" >&2
  exit 1
}
grep -q 'PROFILE' "$WORK/table.txt" || {
  echo "campaign table output is missing its header" >&2
  exit 1
}

# A different seed must actually change the report — determinism, not a
# constant function.
"$WORK/swiftest" campaign -runs 1 -seed 43 -workers 8 -json "$WORK/seed43.json" \
  > /dev/null
if cmp -s "$WORK/w8.json" "$WORK/seed43.json"; then
  echo "campaign report is identical across different seeds — seeding is dead" >&2
  exit 1
fi

echo "campaign smoke passed: full-library sweep, byte-identical across workers and reruns, seed-sensitive"
