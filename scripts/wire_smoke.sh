#!/usr/bin/env bash
# Wire hot-path smoke: the batched syscall path must beat the portable
# fallback by the refactor's ≥3× packets/sec target with zero steady-state
# allocations per packet, and a server forced onto either path must still
# complete a real loopback test.
set -euo pipefail

WORK="$(mktemp -d)"
PIDS=()
trap 'for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$WORK"' EXIT

# --- Leg 1: benchmark gate --------------------------------------------------
# The emitter runs both syscall paths through the full pacing wheel and
# writes the machine-readable report CI archives.
BENCH_WIRE_OUT="$WORK/BENCH_wire.json" \
  go test -run TestEmitBenchWire ./internal/transport

[ -s "$WORK/BENCH_wire.json" ] || {
  echo "BENCH_wire.json was not written" >&2
  exit 1
}
cat "$WORK/BENCH_wire.json"

field() {
  grep -o "\"$1\": [0-9.truefalse]*" "$WORK/BENCH_wire.json" | awk '{print $2}'
}

allocs="$(field allocs_per_packet)"
awk -v a="$allocs" 'BEGIN { exit (a == 0) ? 0 : 1 }' || {
  echo "steady-state allocations per packet = $allocs, want 0" >&2
  exit 1
}

if [ "$(field segment_offload)" = "true" ]; then
  speedup="$(field send_speedup)"
  awk -v s="$speedup" 'BEGIN { exit (s >= 3.0) ? 0 : 1 }' || {
    echo "batched/fallback speedup = ${speedup}x, want >= 3x" >&2
    exit 1
  }
  echo "wire bench gate passed: ${speedup}x speedup, $allocs allocs/packet"
else
  echo "wire bench gate: no segmentation offload on this kernel, speedup target skipped ($allocs allocs/packet)"
fi

# --- Leg 2: both paths serve a real client ----------------------------------
# A forced-fallback server and an auto (batched) server must each carry a
# complete loopback bandwidth test — the syscall path is invisible above the
# socket.
go build -o "$WORK/swiftest" ./cmd/swiftest
cat > "$WORK/model20.json" <<'EOF'
{"version": 1, "components": [{"weight": 1, "mu": 20, "sigma": 2}]}
EOF

port=7930
for mode in fallback auto; do
  "$WORK/swiftest" serve -addr "127.0.0.1:$port" -uplink 25 -wire "$mode" &
  PIDS+=($!)
  ok=0
  for _ in $(seq 1 50); do
    if "$WORK/swiftest" ping -servers "127.0.0.1:$port" -count 1 -timeout 200ms >/dev/null 2>&1; then
      ok=1
      break
    fi
    sleep 0.1
  done
  [ "$ok" -eq 1 ] || { echo "server (-wire $mode) never answered a ping" >&2; exit 1; }

  "$WORK/swiftest" test -servers "127.0.0.1:$port@25" -model "$WORK/model20.json" \
    -max 3s | tee "$WORK/test_$mode.out"
  grep -q 'bandwidth' "$WORK/test_$mode.out" || {
    echo "loopback test against -wire $mode produced no bandwidth estimate" >&2
    exit 1
  }
  port=$((port + 1))
done

echo "wire smoke passed: bench gate met, both syscall paths served complete tests"
