#!/usr/bin/env bash
# Fault-injection smoke: the same blackout plan must produce a degraded,
# failover-completed test both on the virtual-time emulator and over real
# loopback UDP — with the server loss visible in the run-record trace.
set -euo pipefail

WORK="$(mktemp -d)"
PIDS=()
trap 'for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$WORK"' EXIT

go build -o "$WORK/swiftest" ./cmd/swiftest

# --- Leg 1: deterministic virtual-time failover -----------------------------
# Three 200 Mbps emulated servers on a 600 Mbps link; server 1 blacks out at
# 450 ms. The probe must fail over and finish degraded on the survivors.
cat > "$WORK/plan_sim.json" <<'EOF'
{"seed": 7, "faults": [{"kind": "blackout", "server": 1, "at_ms": 450}]}
EOF
cat > "$WORK/model600.json" <<'EOF'
{"version": 1, "components": [{"weight": 1, "mu": 600, "sigma": 60}]}
EOF

"$WORK/swiftest" simulate -capacity 600 -uplinks 200,200,200 \
  -model "$WORK/model600.json" -faults "$WORK/plan_sim.json" -seed 21 \
  -trace "$WORK/sim.jsonl" | tee "$WORK/sim.out"

grep -q 'degraded' "$WORK/sim.out" || {
  echo "emulated blackout did not report a degraded run" >&2
  exit 1
}
grep -q '"kind":"server_lost"' "$WORK/sim.jsonl" || {
  echo "emulated run-record carries no server_lost event" >&2
  exit 1
}

# --- Leg 2: the same plan over real loopback UDP ----------------------------
# Three loopback servers of 25 Mbps each; pool index 1 blacks out 1.5 s after
# startup (server fault times are wall time since NewServer). The model
# demands ~60 Mbps, so the client needs all three servers and must detect and
# survive the mid-test loss.
cat > "$WORK/plan_live.json" <<'EOF'
{"faults": [{"kind": "blackout", "server": 1, "at_ms": 1500}]}
EOF
cat > "$WORK/model60.json" <<'EOF'
{"version": 1, "components": [{"weight": 1, "mu": 60, "sigma": 6}]}
EOF

SERVERS=""
for i in 0 1 2; do
  port=$((7910 + i))
  "$WORK/swiftest" serve -addr "127.0.0.1:$port" -uplink 25 \
    -faults "$WORK/plan_live.json" -fault-server "$i" &
  PIDS+=($!)
  SERVERS="${SERVERS:+$SERVERS,}127.0.0.1:$port@25"
done

# Wait until every server answers a ping.
for i in 0 1 2; do
  port=$((7910 + i))
  ok=0
  for _ in $(seq 1 50); do
    if "$WORK/swiftest" ping -servers "127.0.0.1:$port" -count 1 -timeout 200ms >/dev/null 2>&1; then
      ok=1
      break
    fi
    sleep 0.1
  done
  [ "$ok" -eq 1 ] || { echo "server on port $port never answered a ping" >&2; exit 1; }
done

"$WORK/swiftest" test -servers "$SERVERS" -model "$WORK/model60.json" \
  -max 4s -trace "$WORK/live.jsonl" | tee "$WORK/live.out"

grep -q 'degraded' "$WORK/live.out" || {
  echo "loopback blackout did not report a degraded run" >&2
  exit 1
}
grep -q '"kind":"server_lost"' "$WORK/live.jsonl" || {
  echo "loopback run-record carries no server_lost event" >&2
  exit 1
}

echo "fault smoke passed: emulated and loopback blackouts both failed over degraded"
