#!/usr/bin/env bash
# Loopback observability smoke: start a metrics-enabled test server, run one
# real client test with a run-record, scrape /metrics, and assert that every
# documented server metric is present in the Prometheus text exposition.
#
# Both listeners bind ephemeral ports (:0) and the actual addresses are
# scraped from the server's startup log, so the smoke can run concurrently
# with anything else on the machine.
set -euo pipefail

WORK="$(mktemp -d)"
trap 'kill "${SRV_PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/swiftest" ./cmd/swiftest

"$WORK/swiftest" serve -addr 127.0.0.1:0 -uplink 100 -metrics 127.0.0.1:0 \
  > "$WORK/serve.log" 2>&1 &
SRV_PID=$!

# The server logs its bound addresses; wait for both lines to appear.
SERVE_ADDR= METRICS_ADDR=
for i in $(seq 1 50); do
  SERVE_ADDR="$(sed -n 's/^swiftest server listening on \([^ ]*\).*/\1/p' "$WORK/serve.log")"
  METRICS_ADDR="$(sed -n 's|^metrics on http://\([^/]*\)/metrics.*|\1|p' "$WORK/serve.log")"
  if [ -n "$SERVE_ADDR" ] && [ -n "$METRICS_ADDR" ]; then
    break
  fi
  if ! kill -0 "$SRV_PID" 2>/dev/null; then
    echo "server exited before logging its addresses:" >&2
    cat "$WORK/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$SERVE_ADDR" ] || [ -z "$METRICS_ADDR" ]; then
  echo "could not parse listen addresses from the server log:" >&2
  cat "$WORK/serve.log" >&2
  exit 1
fi

# Wait for the metrics endpoint to answer.
for i in $(seq 1 50); do
  if curl -fsS "http://$METRICS_ADDR/metrics" >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done

"$WORK/swiftest" test -servers "$SERVE_ADDR@100" -max 2s -trace "$WORK/run.jsonl"

# The run-record must carry the documented schema tag in its header line.
head -1 "$WORK/run.jsonl" | grep -q '"schema":"swiftest-run-record/v2"' || {
  echo "run-record header missing schema tag:" >&2
  head -1 "$WORK/run.jsonl" >&2
  exit 1
}

curl -fsS "http://$METRICS_ADDR/metrics" > "$WORK/metrics.txt"

fail=0
for name in \
  swiftest_server_sessions_active \
  swiftest_server_sessions_started_total \
  swiftest_server_sessions_finished_total \
  swiftest_server_sessions_reaped_total \
  swiftest_server_datagrams_sent_total \
  swiftest_server_bytes_sent_total \
  swiftest_server_send_errors_total \
  swiftest_server_rate_clamped_total \
  swiftest_server_pings_total \
  swiftest_server_paced_mbps \
  swiftest_server_uplink_mbps \
  swiftest_server_result_mbps \
; do
  if ! grep -q "^$name" "$WORK/metrics.txt"; then
    echo "missing metric: $name" >&2
    fail=1
  fi
done
if [ "$fail" -ne 0 ]; then
  echo "--- exposition ---" >&2
  cat "$WORK/metrics.txt" >&2
  exit 1
fi

# The one test we ran must be visible in the counters.
grep -q '^swiftest_server_sessions_started_total 1' "$WORK/metrics.txt" || {
  echo "expected exactly one started session:" >&2
  grep '^swiftest_server_sessions' "$WORK/metrics.txt" >&2
  exit 1
}

echo "observability smoke passed: $(wc -l < "$WORK/run.jsonl") run-record lines, $(grep -c '^swiftest_' "$WORK/metrics.txt") metric samples"
