#!/usr/bin/env bash
# Learned early-termination smoke: the CI gate for internal/earlystop.
#
#  1. Training is deterministic — the same flags produce a byte-identical
#     swiftest-earlystop-model/v1 artifact across reruns.
#  2. `-terminate earlystop` drives the emulated substrate: on a churning
#     profile the model fires before the crossing rule (an early_stop trace
#     event with note "model"), and the whole run-record is byte-identical
#     across reruns — the policy does not leak nondeterminism into the core.
#  3. The same flag drives the live loopback substrate end to end, with both
#     the embedded default model and a freshly trained artifact.
set -euo pipefail

WORK="$(mktemp -d)"
trap 'kill ${PIDS:-} 2>/dev/null || true; rm -rf "$WORK"' EXIT
PIDS=

go build -o "$WORK/swiftest" ./cmd/swiftest

# --- Leg 1: deterministic training -------------------------------------------
TRAIN_FLAGS=(-profiles 4g-static,wifi-cafe -runs 1 -seed 3 -step 10 -iters 100)
"$WORK/swiftest" earlystop train "${TRAIN_FLAGS[@]}" -o "$WORK/tiny_a.json" \
  2> "$WORK/train.log"
"$WORK/swiftest" earlystop train "${TRAIN_FLAGS[@]}" -o "$WORK/tiny_b.json" \
  2> /dev/null

cmp "$WORK/tiny_a.json" "$WORK/tiny_b.json" || {
  echo "earlystop training is not deterministic: artifacts differ across reruns" >&2
  exit 1
}
grep -q '"schema": "swiftest-earlystop-model/v1"' "$WORK/tiny_a.json" || {
  echo "trained artifact is missing the swiftest-earlystop-model/v1 schema tag" >&2
  exit 1
}
grep -q 'trained on [1-9][0-9]* rows' "$WORK/train.log" || {
  echo "training produced no rows:" >&2
  cat "$WORK/train.log" >&2
  exit 1
}
echo "earlystop training gate passed: byte-identical artifact"

# --- Leg 2: emulated substrate -----------------------------------------------
# A churning 4G drive profile: the embedded default model must stop the test
# before the crossing rule would (early_stop event, note "model"), and the
# run-record must be byte-identical across reruns.
SIM_FLAGS=(simulate -profile 4g-drive -seed 5 -terminate earlystop)
"$WORK/swiftest" "${SIM_FLAGS[@]}" -trace "$WORK/sim_a.jsonl" > "$WORK/sim.txt"
"$WORK/swiftest" "${SIM_FLAGS[@]}" -trace "$WORK/sim_b.jsonl" > /dev/null

cmp "$WORK/sim_a.jsonl" "$WORK/sim_b.jsonl" || {
  echo "emulated -terminate earlystop run-record differs across reruns" >&2
  exit 1
}
grep -q '"kind":"early_stop"' "$WORK/sim_a.jsonl" || {
  echo "no early_stop trace event on 4g-drive — the model never fired:" >&2
  cat "$WORK/sim.txt" >&2
  exit 1
}
grep '"kind":"early_stop"' "$WORK/sim_a.jsonl" | grep -q '"note":"model"' || {
  echo "early_stop event was not attributed to the model:" >&2
  grep '"kind":"early_stop"' "$WORK/sim_a.jsonl" >&2
  exit 1
}
# The custom artifact path must work on the emulated substrate too.
"$WORK/swiftest" simulate -profile wifi-cafe -seed 2 \
  -terminate earlystop -terminate-model "$WORK/tiny_a.json" > /dev/null
echo "earlystop emulated gate passed: deterministic run-record, model early stop"

# --- Leg 3: live loopback substrate ------------------------------------------
"$WORK/swiftest" serve -addr 127.0.0.1:0 -uplink 50 > "$WORK/serve.log" 2>&1 &
PIDS="$PIDS $!"
ADDR=
for i in $(seq 1 50); do
  ADDR="$(sed -n 's/^swiftest server listening on \([^ ]*\).*/\1/p' "$WORK/serve.log")"
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || {
  echo "server never logged its listen address:" >&2
  cat "$WORK/serve.log" >&2
  exit 1
}

"$WORK/swiftest" test -servers "$ADDR@50" -max 2s \
  -terminate earlystop > "$WORK/live_default.txt" 2>&1 || {
  echo "live -terminate earlystop test failed (embedded default model):" >&2
  cat "$WORK/live_default.txt" >&2
  exit 1
}
grep -q 'bandwidth' "$WORK/live_default.txt" || {
  echo "live earlystop test produced no bandwidth line:" >&2
  cat "$WORK/live_default.txt" >&2
  exit 1
}
"$WORK/swiftest" test -servers "$ADDR@50" -max 2s \
  -terminate earlystop -terminate-model "$WORK/tiny_a.json" \
  > "$WORK/live_tiny.txt" 2>&1 || {
  echo "live -terminate earlystop test failed (trained artifact):" >&2
  cat "$WORK/live_tiny.txt" >&2
  exit 1
}
echo "earlystop live gate passed: both models served a loopback test"

echo "earlystop smoke passed: deterministic training, deterministic emulated early stop, live substrate on both models"
