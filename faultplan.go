package swiftest

import "github.com/mobilebandwidth/swiftest/internal/faults"

// FaultPlan is a declarative, seeded schedule of faults for a bandwidth
// test: server blackouts, handshake drops, burst-loss windows, delayed or
// duplicated pongs, and rate-cap squeezes. The same plan drives the
// virtual-time emulator (SimulateOptions.Faults) and real servers
// (ServerOptions.FaultPlan), producing the same fault sequence in both
// worlds — and, with a fixed seed, on every rerun.
type FaultPlan = faults.Plan

// Fault is one scheduled clause of a FaultPlan. Times are milliseconds of
// elapsed test time (virtual under SimulateTest, wall time since NewServer
// for real servers).
type Fault = faults.Fault

// FaultKind selects the fault type of a Fault clause.
type FaultKind = faults.Kind

// The fault vocabulary. Each value is also the JSON "kind" string.
const (
	// FaultBlackout makes a server fall silent mid-test, like a crashed
	// process: inbound datagrams are ignored and nothing is paced.
	FaultBlackout = faults.Blackout
	// FaultHandshakeDrop discards session-setup requests while active.
	FaultHandshakeDrop = faults.HandshakeDrop
	// FaultBurstLoss drops each probe datagram with probability Prob.
	FaultBurstLoss = faults.BurstLoss
	// FaultPongDelay holds pongs back, inflating the apparent RTT.
	FaultPongDelay = faults.PongDelay
	// FaultPongDup duplicates pongs.
	FaultPongDup = faults.PongDup
	// FaultRateCap clamps the server's pacing to CapMbps.
	FaultRateCap = faults.RateCap
)

// AllServers as a Fault.Server index targets every server in the pool.
const AllServers = faults.AllServers

// ParseFaultPlan decodes and validates a JSON fault plan. Unknown fields
// are rejected so schema typos fail loudly instead of silently injecting
// nothing.
func ParseFaultPlan(data []byte) (*FaultPlan, error) { return faults.Parse(data) }

// LoadFaultPlan reads and parses a JSON fault plan from path.
func LoadFaultPlan(path string) (*FaultPlan, error) { return faults.Load(path) }
