package swiftest

import (
	"context"
	"fmt"

	"github.com/mobilebandwidth/swiftest/internal/core"
	"github.com/mobilebandwidth/swiftest/internal/earlystop"
)

// TerminationPolicy decides, after every 50 ms sample, whether a bandwidth
// test has measured enough. Three implementations ship with the library:
// CrossingTermination (the paper's §5.1 stability window, the default),
// FastBTSTermination (FastBTS's crucial-interval agreement), and the
// learned EarlyStopTermination. Set one on SessionOptions.Terminate.
type TerminationPolicy = core.TerminationPolicy

// CrossingTermination is the paper's §5.1 stopping rule: stop when the last
// Window samples agree within Threshold, reporting their mean. The zero
// value selects the published parameters (10 samples, 3 %).
type CrossingTermination = core.CrossingPolicy

// FastBTSTermination is FastBTS's crucial-interval stopping rule (NSDI '21)
// applied to the Swiftest engine's sample stream. The zero value selects
// the baseline prober's parameters.
type FastBTSTermination = core.FastBTSPolicy

// EarlyStopModel is a trained learned-termination model
// (swiftest-earlystop-model/v1). Obtain one from DefaultEarlyStopModel,
// ParseEarlyStopModel, or the `swiftest earlystop train` pipeline.
type EarlyStopModel = earlystop.Model

// EarlyStopTermination is the learned TURBOTEST-style policy over model;
// a nil model selects the embedded default. The §5.1 crossing rule remains
// its fallback, so it never stops later than the default policy.
func EarlyStopTermination(model *EarlyStopModel) TerminationPolicy {
	return earlystop.NewPolicy(model)
}

// DefaultEarlyStopModel returns the embedded default earlystop model,
// trained offline over the built-in RAN profile library. The returned
// model is shared and read-only.
func DefaultEarlyStopModel() *EarlyStopModel { return earlystop.Default() }

// ParseEarlyStopModel loads a model artifact produced by
// (*EarlyStopModel).Encode or `swiftest earlystop train`.
func ParseEarlyStopModel(data []byte) (*EarlyStopModel, error) { return earlystop.Parse(data) }

// ParseTerminationPolicy maps a policy name — "crossing", "fastbts",
// "earlystop" — to its default-parameterised implementation. The empty
// string selects nil (the engine's crossing default), so it can sit
// directly behind a CLI flag.
func ParseTerminationPolicy(name string) (TerminationPolicy, error) {
	switch name {
	case "":
		return nil, nil
	case "crossing":
		return CrossingTermination{}, nil
	case "fastbts":
		return FastBTSTermination{}, nil
	case "earlystop":
		return earlystop.NewPolicy(nil), nil
	default:
		return nil, fmt.Errorf("swiftest: unknown termination policy %q (known: crossing, fastbts, earlystop)", name)
	}
}

// EarlyStopTrainOptions parameterise EarlyStop model fitting; see
// earlystop.TrainOptions for the per-field defaults.
type EarlyStopTrainOptions = earlystop.TrainOptions

// EarlyStopReplayConfig parameterises the labeling replay behind
// TrainEarlyStopModel: RAN profiles × fault cases × seeded runs, labeled
// against flooding ground truth.
type EarlyStopReplayConfig = earlystop.ReplayConfig

// EarlyStopRow is one labeled training example emitted by the replay.
type EarlyStopRow = earlystop.Row

// TrainEarlyStopModel replays seeded campaign scenarios and fits an
// earlystop model. Deterministic: the same configs produce a
// byte-identical Encode artifact and identical rows.
func TrainEarlyStopModel(ctx context.Context, rcfg EarlyStopReplayConfig, topts EarlyStopTrainOptions) (*EarlyStopModel, []EarlyStopRow, error) {
	return earlystop.TrainFromReplay(ctx, rcfg, topts)
}
