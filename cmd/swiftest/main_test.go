package main

import "testing"

func TestParseServers(t *testing.T) {
	got, err := parseServers("a.example:7007@250, b.example:7007 ,c.example:7007@10")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d servers, want 3", len(got))
	}
	if got[0].Addr != "a.example:7007" || got[0].UplinkMbps != 250 {
		t.Errorf("first = %+v", got[0])
	}
	if got[1].Addr != "b.example:7007" || got[1].UplinkMbps != 100 {
		t.Errorf("default uplink = %+v", got[1])
	}
	if got[2].UplinkMbps != 10 {
		t.Errorf("third = %+v", got[2])
	}
}

func TestParseServersIPv6(t *testing.T) {
	got, err := parseServers("[::1]:7007@50")
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Addr != "[::1]:7007" || got[0].UplinkMbps != 50 {
		t.Errorf("IPv6 = %+v", got[0])
	}
}

func TestParseServersErrors(t *testing.T) {
	for _, spec := range []string{"", "host:1@zero", "host:1@-5", "host:1@"} {
		if _, err := parseServers(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}
