package main

import "fmt"

// validateWorkers rejects non-positive -workers values with a pointed
// error, instead of letting a typo'd 0 or -1 silently serialize (the
// library layers treat non-positive worker counts as "one worker").
func validateWorkers(n int) error {
	if n < 1 {
		return fmt.Errorf("-workers must be at least 1, got %d (use -workers 1 to run serially)", n)
	}
	return nil
}
