package main

import (
	"strings"
	"testing"
)

func TestValidateWorkers(t *testing.T) {
	for _, n := range []int{1, 2, 64} {
		if err := validateWorkers(n); err != nil {
			t.Errorf("validateWorkers(%d) = %v, want nil", n, err)
		}
	}
	for _, n := range []int{0, -1, -100} {
		err := validateWorkers(n)
		if err == nil {
			t.Fatalf("validateWorkers(%d) = nil, want error", n)
		}
		if !strings.Contains(err.Error(), "-workers") {
			t.Errorf("validateWorkers(%d) error %q does not name the -workers flag", n, err)
		}
	}
}
