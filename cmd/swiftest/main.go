// Command swiftest is the deployable CLI of the Swiftest bandwidth testing
// service: run a test server, run a client bandwidth test against a server
// pool, or ping servers for latency.
//
// Usage:
//
//	swiftest serve  [-addr :7007] [-uplink 100] [-wire auto|fallback] [-metrics :9090] [-faults plan.json] [-fault-server 0] [-v]
//	swiftest test   -servers host1:7007[@uplink],host2:7007[@uplink] [-tech 5G] [-max 5s] [-timeout 30s] [-json] [-trace run.jsonl]
//	swiftest ping   -servers host1:7007,host2:7007 [-count 3]
//
// A planned fleet (see cmd/deployplan) comes alive with:
//
//	swiftest dispatch -plan plan.json [-addr 127.0.0.1:7900] [-v]
//	swiftest serve    -register http://127.0.0.1:7900 -domain Beijing
//	swiftest test     -dispatch http://127.0.0.1:7900 [-domain Beijing]
//	swiftest loadgen  -plan plan.json -peak 5000 [-duration 30s] [-json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	swiftest "github.com/mobilebandwidth/swiftest"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serve(os.Args[2:])
	case "test":
		err = test(os.Args[2:])
	case "ping":
		err = ping(os.Args[2:])
	case "simulate":
		err = simulate(os.Args[2:])
	case "relay":
		err = relay(os.Args[2:])
	case "floodserve":
		err = floodServe(os.Args[2:])
	case "floodtest":
		err = floodTest(os.Args[2:])
	case "dispatch":
		err = dispatch(os.Args[2:])
	case "loadgen":
		err = loadgenCmd(os.Args[2:])
	case "campaign":
		err = campaign(os.Args[2:])
	case "profiles":
		err = profilesCmd(os.Args[2:])
	case "token":
		err = tokenCmd(os.Args[2:])
	case "earlystop":
		err = earlystopCmd(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "swiftest: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "swiftest:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `swiftest — ultra-fast, ultra-light bandwidth testing (SIGCOMM '22)

commands:
  serve       run a Swiftest UDP test server
  test        run a Swiftest client bandwidth test against a server pool
  ping        measure latency to servers
  simulate    run a test on an emulated access link (no network needed)
  relay       emulate an access link in front of a real test server
  floodserve  run a legacy probing-by-flooding HTTP server (the BTS-APP baseline)
  floodtest   run a legacy 10-second flooding test against HTTP servers
  dispatch    run the fleet control plane for a deployment plan (HTTP)
  loadgen     rehearse a deployment plan under diurnal load in virtual time
  campaign    sweep RAN profiles x algorithms x fault plans in virtual time
  profiles    list the built-in RAN scenario profile library
  token       mint a session auth token for a keyed deployment
  earlystop   train a learned early-termination model from replayed scenarios

run "swiftest <command> -h" for command flags.
`)
}

func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":7007", "UDP listen address")
	uplink := fs.Float64("uplink", 100, "server egress capacity (Mbps)")
	metricsAddr := fs.String("metrics", "", "HTTP listen address for /metrics (Prometheus text; empty disables)")
	faultsPath := fs.String("faults", "", "JSON fault plan to act out (times are elapsed since startup)")
	faultServer := fs.Int("fault-server", 0, "this server's index in the fault plan's pool order")
	register := fs.String("register", "", "fleet dispatch URL to register with and heartbeat (empty disables)")
	domain := fs.String("domain", "", "IXP domain to report when registering with a dispatcher")
	wireMode := fs.String("wire", "auto", "wire send path: auto (batched syscalls + segmentation offload where available) or fallback (one datagram per syscall)")
	authKey := fs.Uint64("authkey", 0, "fleet auth key; non-zero requires v2 clients to present a lease token minted under it")
	verbose := fs.Bool("v", false, "log test activity")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := swiftest.ServerOptions{UplinkMbps: *uplink, FaultServer: *faultServer, AuthKey: *authKey}
	switch *wireMode {
	case "auto":
		opts.Wire = swiftest.WireAuto
	case "fallback":
		opts.Wire = swiftest.WireFallback
	default:
		return fmt.Errorf("unknown -wire mode %q (want auto or fallback)", *wireMode)
	}
	if *faultsPath != "" {
		plan, err := swiftest.LoadFaultPlan(*faultsPath)
		if err != nil {
			return err
		}
		opts.FaultPlan = plan
		fmt.Printf("acting out %d faults from %s as pool server %d\n",
			len(plan.Faults), *faultsPath, *faultServer)
	}
	if *verbose {
		opts.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	if *metricsAddr != "" {
		opts.Metrics = swiftest.NewMetricsRegistry()
	}
	srv, err := swiftest.NewServer(*addr, opts)
	if err != nil {
		return err
	}
	defer srv.Close()
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.Handle("/metrics", opts.Metrics.Handler())
		msrv := &http.Server{Handler: mux}
		go func() { _ = msrv.Serve(ln) }()
		defer msrv.Close()
		fmt.Printf("metrics on http://%s/metrics\n", ln.Addr())
	}
	fmt.Printf("swiftest server listening on %s (uplink %.0f Mbps)\n", srv.Addr(), *uplink)
	if *register != "" {
		stop, err := registerWithDispatcher(*register, srv, *domain, *uplink)
		if err != nil {
			return err
		}
		defer stop()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("shutting down; %d bytes of probe traffic sent\n", srv.BytesSent())
	return nil
}

// parseServers parses "host:port[@uplinkMbps]" entries; a missing uplink
// defaults to 100 Mbps.
func parseServers(spec string) ([]swiftest.ServerAddr, error) {
	if spec == "" {
		return nil, fmt.Errorf("no servers given (use -servers host:port[@uplink],...)")
	}
	var out []swiftest.ServerAddr
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		addr, uplink := part, 100.0
		if at := strings.LastIndex(part, "@"); at >= 0 {
			addr = part[:at]
			u, err := strconv.ParseFloat(part[at+1:], 64)
			if err != nil || u <= 0 {
				return nil, fmt.Errorf("bad uplink in %q", part)
			}
			uplink = u
		}
		out = append(out, swiftest.ServerAddr{Addr: addr, UplinkMbps: uplink})
	}
	return out, nil
}

func test(args []string) error {
	fs := flag.NewFlagSet("test", flag.ExitOnError)
	servers := fs.String("servers", "", "comma-separated host:port[@uplinkMbps] test servers")
	dispatchURL := fs.String("dispatch", "", "fleet dispatch URL to request a server pool from (replaces -servers)")
	key := fs.Uint64("key", 0, "client key for deterministic dispatch tie-breaks (with -dispatch)")
	domain := fs.String("domain", "", "client IXP domain for latency-aware dispatch (with -dispatch)")
	tech := fs.String("tech", "5G", "access technology for the bandwidth model: 4G, 5G or WiFi")
	modelPath := fs.String("model", "", "JSON bandwidth-model file (overrides -tech; see SaveModel)")
	maxDur := fs.Duration("max", 5*time.Second, "probing deadline")
	timeout := fs.Duration("timeout", 0, "hard deadline for the whole test including server selection (0 disables)")
	asJSON := fs.Bool("json", false, "emit the result as JSON")
	tracePath := fs.String("trace", "", "write a JSONL run-record of the test to this file")
	protoFlag := fs.String("protocol", "auto", "wire protocol: auto (v2 with v1 fallback), v1, or v2")
	tokenFlag := fs.String("token", "", "hex session auth token for a keyed deployment (minted by the dispatcher; implicit with -dispatch)")
	regimeHint := fs.Bool("regime-hint", false, "feed the BDP-regime classifier back as a convergence hint")
	terminateFlag := fs.String("terminate", "", "termination policy: crossing (default), fastbts, or earlystop")
	terminateModel := fs.String("terminate-model", "", "earlystop model artifact to use with -terminate earlystop (empty selects the embedded default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	terminate, err2 := parseTerminate(*terminateFlag, *terminateModel)
	if err2 != nil {
		return err2
	}
	proto, err2 := swiftest.ParseProtocol(*protoFlag)
	if err2 != nil {
		return err2
	}
	var token swiftest.AuthToken
	if *tokenFlag != "" {
		t, err := swiftest.ParseAuthToken(*tokenFlag)
		if err != nil {
			return err
		}
		token = t
	}

	var pool []swiftest.ServerAddr
	var err error
	if *dispatchURL == "" {
		pool, err = parseServers(*servers)
		if err != nil {
			return err
		}
	}
	var model *swiftest.Model
	if *modelPath != "" {
		model, err = swiftest.LoadModel(*modelPath)
		if err != nil {
			return err
		}
	} else {
		var t swiftest.Tech
		switch strings.ToUpper(*tech) {
		case "4G", "LTE":
			t = swiftest.Tech4G
		case "5G", "NR":
			t = swiftest.Tech5G
		case "WIFI":
			t = swiftest.TechWiFi
		default:
			return fmt.Errorf("unknown technology %q", *tech)
		}
		model, err = swiftest.DefaultModel(t)
		if err != nil {
			return err
		}
	}

	var trace *swiftest.Trace
	if *tracePath != "" {
		trace = swiftest.NewTrace(0)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *dispatchURL != "" {
		a, err := fetchAssignment(ctx, *dispatchURL, *key, *domain)
		if err != nil {
			return err
		}
		pool = a.Servers
		if *tokenFlag == "" && a.Token != "" {
			t, err := swiftest.ParseAuthToken(a.Token)
			if err != nil {
				return fmt.Errorf("dispatcher sent a bad lease token: %w", err)
			}
			token = t
		}
		fmt.Fprintf(os.Stderr, "dispatched to %s (pool of %d)\n", pool[0].Addr, len(pool))
		defer releaseAssignment(*dispatchURL, a)
	}
	res, err := swiftest.TestContext(ctx, swiftest.TestOptions{
		SessionOptions: swiftest.SessionOptions{Trace: trace, Terminate: terminate},
		Servers:        pool,
		Model:          model,
		MaxDuration:    *maxDur,
		Protocol:       proto,
		Token:          token,
		RegimeHint:     *regimeHint,
	})
	if err != nil {
		return err
	}
	if trace != nil {
		if err := writeTrace(*tracePath, trace); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "run-record written to %s\n", *tracePath)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Printf("bandwidth : %.1f Mbps\n", res.BandwidthMbps)
	fmt.Printf("estimates : trimmed %.1f, peak %.1f, p90-p80 %.1f Mbps (regime %s)\n",
		res.Estimates.TrimmedMeanMbps, res.Estimates.SustainedPeakMbps, res.Estimates.P90P80Mbps, res.Regime)
	fmt.Printf("protocol  : v%d\n", res.ProtocolVersion)
	fmt.Printf("duration  : %v probing + %v server selection\n",
		res.Duration.Round(time.Millisecond), res.SelectionTime.Round(time.Millisecond))
	fmt.Printf("data used : %.1f MB over %d samples\n", res.DataMB, len(res.Samples))
	fmt.Printf("converged : %v (initial rate %.0f Mbps, %d escalations)\n",
		res.Converged, res.InitialRateMbps, res.RateChanges)
	if res.ServersLost > 0 {
		fmt.Printf("degraded  : lost %d of %d servers mid-test and failed over\n",
			res.ServersLost, res.ServersUsed)
	}
	if res.Jitter > 0 {
		fmt.Printf("jitter    : %v (interarrival, RFC 3550 style)\n", res.Jitter.Round(time.Microsecond))
	}
	return nil
}

// writeTrace dumps a test's run-record to path as JSONL.
func writeTrace(path string, tr *swiftest.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating run-record: %w", err)
	}
	if err := tr.WriteJSONL(f); err != nil {
		f.Close()
		return fmt.Errorf("writing run-record: %w", err)
	}
	return f.Close()
}

func ping(args []string) error {
	fs := flag.NewFlagSet("ping", flag.ExitOnError)
	servers := fs.String("servers", "", "comma-separated host:port servers")
	count := fs.Int("count", 3, "pings per server")
	timeout := fs.Duration("timeout", time.Second, "per-ping timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pool, err := parseServers(*servers)
	if err != nil {
		return err
	}
	exit := error(nil)
	for _, s := range pool {
		rtt, err := swiftest.PingServer(context.Background(), swiftest.PingOptions{Addr: s.Addr, Count: *count, Timeout: *timeout})
		if err != nil {
			fmt.Printf("%-28s unreachable (%v)\n", s.Addr, err)
			exit = fmt.Errorf("some servers unreachable")
			continue
		}
		fmt.Printf("%-28s %v\n", s.Addr, rtt.Round(time.Microsecond))
	}
	return exit
}

func simulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	capMbps := fs.Float64("capacity", 300, "emulated access-link capacity (Mbps)")
	rtt := fs.Duration("rtt", 30*time.Millisecond, "link RTT")
	fluct := fs.Float64("noise", 0.01, "relative capacity fluctuation")
	tech := fs.String("tech", "5G", "bandwidth model: 4G, 5G or WiFi")
	modelPath := fs.String("model", "", "JSON bandwidth-model file (overrides -tech)")
	seed := fs.Int64("seed", 1, "emulation seed")
	compare := fs.Bool("compare", false, "also run the flooding/FAST/FastBTS baselines")
	tracePath := fs.String("trace", "", "write a JSONL run-record of the emulated test to this file")
	faultsPath := fs.String("faults", "", "JSON fault plan to inject into the emulated pool")
	uplinks := fs.String("uplinks", "", "comma-separated per-server uplink caps (Mbps) for a multi-server pool")
	profileName := fs.String("profile", "", "drive the link with a RAN scenario profile (see `swiftest profiles`; overrides -capacity/-rtt/-noise)")
	terminateFlag := fs.String("terminate", "", "termination policy: crossing (default), fastbts, or earlystop")
	terminateModel := fs.String("terminate-model", "", "earlystop model artifact to use with -terminate earlystop (empty selects the embedded default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	terminate, err := parseTerminate(*terminateFlag, *terminateModel)
	if err != nil {
		return err
	}
	var profile *swiftest.Profile
	if *profileName != "" {
		p, err := swiftest.LookupProfile(*profileName)
		if err != nil {
			return err
		}
		profile = p
		techSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "tech" {
				techSet = true
			}
		})
		if !techSet && *modelPath == "" {
			*tech = p.Tech // default the model to the profile's technology
		}
	}
	var model *swiftest.Model
	if *modelPath != "" {
		model, err = swiftest.LoadModel(*modelPath)
	} else {
		switch strings.ToUpper(*tech) {
		case "4G", "LTE":
			model, err = swiftest.DefaultModel(swiftest.Tech4G)
		case "5G", "NR":
			model, err = swiftest.DefaultModel(swiftest.Tech5G)
		case "WIFI":
			model, err = swiftest.DefaultModel(swiftest.TechWiFi)
		default:
			return fmt.Errorf("unknown technology %q", *tech)
		}
	}
	if err != nil {
		return err
	}
	// The profile rides on the LinkConfig so -compare baselines replay the
	// identical scenario (same seed, same state chain) as the Swiftest run.
	link := swiftest.LinkConfig{CapacityMbps: *capMbps, RTT: *rtt, Fluctuation: *fluct, Seed: *seed, Profile: profile}
	var trace *swiftest.Trace
	if *tracePath != "" {
		trace = swiftest.NewTrace(0)
	}
	simOpts := swiftest.SimulateOptions{SessionOptions: swiftest.SessionOptions{Trace: trace, Terminate: terminate}}
	if *faultsPath != "" {
		plan, err := swiftest.LoadFaultPlan(*faultsPath)
		if err != nil {
			return err
		}
		simOpts.Faults = plan
	}
	if *uplinks != "" {
		for i, part := range strings.Split(*uplinks, ",") {
			u, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil || u <= 0 {
				return fmt.Errorf("bad uplink %q in -uplinks", part)
			}
			simOpts.Servers = append(simOpts.Servers, swiftest.SimServer{
				Addr:       fmt.Sprintf("sim-%d", i),
				UplinkMbps: u,
			})
		}
	}
	res, err := swiftest.SimulateTestContext(context.Background(), link, model, simOpts)
	if err != nil {
		return err
	}
	if trace != nil {
		if err := writeTrace(*tracePath, trace); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "run-record written to %s\n", *tracePath)
	}
	fmt.Printf("swiftest : %.1f Mbps in %v, %.1f MB, converged=%v (%d escalations)\n",
		res.BandwidthMbps, res.Duration, res.DataMB, res.Converged, res.RateChanges)
	fmt.Printf("estimates: trimmed %.1f, peak %.1f, p90-p80 %.1f Mbps (regime %s)\n",
		res.Estimates.TrimmedMeanMbps, res.Estimates.SustainedPeakMbps, res.Estimates.P90P80Mbps, res.Regime)
	if res.ServersLost > 0 {
		fmt.Printf("degraded : lost %d of %d servers mid-test and failed over\n",
			res.ServersLost, res.ServersUsed)
	}
	if !*compare {
		return nil
	}
	bts, err := swiftest.RunBTSApp(link)
	if err != nil {
		return err
	}
	fast, err := swiftest.RunFAST(link)
	if err != nil {
		return err
	}
	fbts, err := swiftest.RunFastBTS(link)
	if err != nil {
		return err
	}
	for _, b := range []swiftest.BaselineReport{bts, fast, fbts} {
		fmt.Printf("%-9s: %.1f Mbps in %v, %.1f MB\n", b.System, b.BandwidthMbps, b.Duration, b.DataMB)
	}
	return nil
}

func relay(args []string) error {
	fs := flag.NewFlagSet("relay", flag.ExitOnError)
	target := fs.String("target", "", "real test server (host:port)")
	rate := fs.Float64("rate", 50, "bottleneck rate (Mbps)")
	delay := fs.Duration("delay", 20*time.Millisecond, "one-way downlink delay")
	loss := fs.Float64("loss", 0, "downlink loss probability")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *target == "" {
		return fmt.Errorf("no target given (use -target host:port)")
	}
	rl, err := swiftest.NewLinkRelay(swiftest.LinkRelayConfig{
		Target:   *target,
		RateMbps: *rate,
		Delay:    *delay,
		LossRate: *loss,
	})
	if err != nil {
		return err
	}
	defer rl.Close()
	fmt.Printf("emulated %g Mbps / %v / %.1f%%-loss link on %s → %s\n",
		*rate, *delay, *loss*100, rl.Addr(), *target)
	fmt.Println("point clients at the relay address instead of the server")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("shutting down; delivered %d bytes, dropped %d datagrams\n",
		rl.DeliveredBytes(), rl.DroppedPackets())
	return nil
}

func floodServe(args []string) error {
	fs := flag.NewFlagSet("floodserve", flag.ExitOnError)
	addr := fs.String("addr", ":7008", "HTTP listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv, err := swiftest.NewFloodServer(*addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("flooding server listening on %s (GET /chunk, GET /ping)\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("shutting down; %d payload bytes served\n", srv.BytesSent())
	return nil
}

func floodTest(args []string) error {
	fs := flag.NewFlagSet("floodtest", flag.ExitOnError)
	urls := fs.String("urls", "", "comma-separated server base URLs (http://host:port)")
	dur := fs.Duration("duration", 10*time.Second, "flooding duration (§2 uses 10 s)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *urls == "" {
		return fmt.Errorf("no URLs given (use -urls http://host:port,...)")
	}
	rep, err := swiftest.RunFloodTest(swiftest.FloodConfig{
		URLs:     strings.Split(*urls, ","),
		Duration: *dur,
	})
	if err != nil {
		return err
	}
	fmt.Printf("bandwidth  : %.1f Mbps\n", rep.ResultMbps)
	fmt.Printf("duration   : %v (fixed flooding window)\n", rep.Duration.Round(time.Millisecond))
	fmt.Printf("data used  : %.1f MB over %d connections\n", rep.DataMB, rep.Conns)
	fmt.Printf("samples    : %d\n", len(rep.Samples))
	return nil
}

func campaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	profilesFlag := fs.String("profiles", "all", `comma-separated RAN profiles to sweep, or "all"`)
	algsFlag := fs.String("algs", "swiftest,fastbts", "comma-separated termination algorithms (swiftest, fastbts, fast, earlystop)")
	runs := fs.Int("runs", 3, "seeded runs per (profile, algorithm, fault plan) cell")
	seed := fs.Int64("seed", 1, "campaign seed; the report is a pure function of (config, seed)")
	workers := fs.Int("workers", 4, "concurrent runs (the report is byte-identical at any worker count)")
	jsonOut := fs.String("json", "", `write the swiftest-campaign-report/v1 JSON here ("-" for stdout, suppressing the table)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateWorkers(*workers); err != nil {
		return err
	}
	cfg := swiftest.CampaignConfig{Runs: *runs, Seed: *seed, Workers: *workers}
	if *profilesFlag != "all" && *profilesFlag != "" {
		cfg.Profiles = strings.Split(*profilesFlag, ",")
	}
	if *algsFlag != "" {
		cfg.Algorithms = strings.Split(*algsFlag, ",")
	}
	rep, err := swiftest.RunCampaign(context.Background(), cfg)
	if err != nil {
		return err
	}
	if *jsonOut == "-" {
		return rep.WriteJSON(os.Stdout)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "campaign report written to %s\n", *jsonOut)
	}
	return rep.WriteTable(os.Stdout)
}

// tokenCmd mints a session auth token out-of-band — what the dispatcher does
// per lease, exposed for keyed deployments running without a control plane.
func tokenCmd(args []string) error {
	fs := flag.NewFlagSet("token", flag.ExitOnError)
	authKey := fs.Uint64("authkey", 0, "deployment auth key (must match the servers' -authkey)")
	server := fs.Uint("server", 0, "server ID the token is bound to")
	seq := fs.Uint64("seq", 1, "lease sequence number")
	ttl := fs.Duration("ttl", 0, "token lifetime from now; servers reject the token after it passes (0 = never expires)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *authKey == 0 {
		return fmt.Errorf("no auth key given (use -authkey; zero keys an open deployment, which needs no tokens)")
	}
	if *ttl < 0 {
		return fmt.Errorf("negative -ttl %v", *ttl)
	}
	tok := swiftest.MintAuthToken(*authKey, uint32(*server), *seq)
	if *ttl > 0 {
		deadline := time.Now().Add(*ttl) //lint:allow walltime out-of-band token minting anchors its deadline to real time
		tok = swiftest.MintAuthTokenExpiring(*authKey, uint32(*server), *seq, deadline)
	}
	fmt.Println(tok.String())
	return nil
}

func profilesCmd(args []string) error {
	fs := flag.NewFlagSet("profiles", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, name := range swiftest.Profiles() {
		p, err := swiftest.LookupProfile(name)
		if err != nil {
			return err
		}
		states := make([]string, 0, len(p.States))
		for _, s := range p.States {
			states = append(states, fmt.Sprintf("%s(%gMbps/%gms)", s.Name, s.CapacityMbps, s.RTTMillis))
		}
		fmt.Printf("%-26s %-5s %s\n%-26s       states: %s\n", name, p.Tech, p.Description, "", strings.Join(states, " "))
	}
	return nil
}
