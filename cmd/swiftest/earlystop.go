package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	swiftest "github.com/mobilebandwidth/swiftest"
)

// parseTerminate maps the -terminate/-terminate-model flag pair to a
// termination policy. An empty name selects the engine's crossing default;
// a model path is only meaningful with -terminate earlystop.
func parseTerminate(name, modelPath string) (swiftest.TerminationPolicy, error) {
	if modelPath != "" && name != "earlystop" {
		return nil, fmt.Errorf("-terminate-model requires -terminate earlystop (got %q)", name)
	}
	if modelPath == "" {
		return swiftest.ParseTerminationPolicy(name)
	}
	data, err := os.ReadFile(modelPath)
	if err != nil {
		return nil, fmt.Errorf("reading earlystop model: %w", err)
	}
	model, err := swiftest.ParseEarlyStopModel(data)
	if err != nil {
		return nil, err
	}
	return swiftest.EarlyStopTermination(model), nil
}

// earlystopCmd dispatches the earlystop subcommands (currently: train).
func earlystopCmd(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf(`earlystop needs a subcommand: "swiftest earlystop train -h"`)
	}
	switch args[0] {
	case "train":
		return earlystopTrain(args[1:])
	default:
		return fmt.Errorf("unknown earlystop subcommand %q (known: train)", args[0])
	}
}

// earlystopTrain replays seeded campaign scenarios (RAN profiles × fault
// plans against flooding ground truth), labels every test prefix, fits a
// logistic-regression model, and writes the swiftest-earlystop-model/v1
// artifact. The whole pipeline is deterministic: the same flags reproduce
// the artifact byte-for-byte.
func earlystopTrain(args []string) error {
	fs := flag.NewFlagSet("earlystop train", flag.ExitOnError)
	profilesFlag := fs.String("profiles", "all", `comma-separated RAN profiles to replay, or "all"`)
	runs := fs.Int("runs", 3, "seeded runs per (profile, fault plan) cell")
	seed := fs.Int64("seed", 1, "replay seed; rows and model are a pure function of (flags, seed)")
	minSamples := fs.Int("k", 20, "K: the shortest prefix the model may stop at")
	step := fs.Int("step", 5, "stride between labeled prefixes of one run")
	tolerance := fs.Float64("tolerance", 0.10, "relative-error band labeling a prefix accurate")
	threshold := fs.Float64("threshold", 0.85, "stop-probability threshold stored in the model")
	iters := fs.Int("iters", 400, "gradient-descent iterations")
	out := fs.String("o", "earlystop_model.json", `model artifact output path ("-" for stdout)`)
	rowsOut := fs.String("rows", "", "also write the labeled feature rows as JSONL here (empty disables)")
	timeout := fs.Duration("timeout", 10*time.Minute, "replay deadline (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rcfg := swiftest.EarlyStopReplayConfig{
		Runs:       *runs,
		Seed:       *seed,
		MinSamples: *minSamples,
		PrefixStep: *step,
		Tolerance:  *tolerance,
	}
	if *profilesFlag != "all" && *profilesFlag != "" {
		rcfg.Profiles = strings.Split(*profilesFlag, ",")
	}
	topts := swiftest.EarlyStopTrainOptions{Iterations: *iters, Threshold: *threshold}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	model, rows, err := swiftest.TrainEarlyStopModel(ctx, rcfg, topts)
	if err != nil {
		return err
	}

	pos := 0
	for _, r := range rows {
		if r.Label {
			pos++
		}
	}
	fmt.Fprintf(os.Stderr, "trained on %d rows (%d positive) from %d runs/cell, seed %d\n",
		len(rows), pos, *runs, *seed)

	if *rowsOut != "" {
		if err := writeRows(*rowsOut, rows); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "rows written to %s\n", *rowsOut)
	}

	artifact, err := model.Encode()
	if err != nil {
		return err
	}
	if *out == "-" {
		_, err := os.Stdout.Write(artifact)
		return err
	}
	if err := os.WriteFile(*out, artifact, 0o644); err != nil {
		return fmt.Errorf("writing model artifact: %w", err)
	}
	fmt.Fprintf(os.Stderr, "model written to %s\n", *out)
	return nil
}

// writeRows dumps labeled training rows as JSONL, one row per line.
func writeRows(path string, rows []swiftest.EarlyStopRow) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating rows file: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, r := range rows {
		if err := enc.Encode(r); err != nil {
			f.Close()
			return fmt.Errorf("writing rows: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("writing rows: %w", err)
	}
	return f.Close()
}
