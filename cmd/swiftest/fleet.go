package main

// The fleet control-plane face of the CLI: `swiftest dispatch` serves the
// HTTP control plane for a planned fleet, `swiftest serve -register` makes a
// test server join it and heartbeat, `swiftest test -dispatch` asks it for a
// ranked server pool, and `swiftest loadgen` rehearses the whole thing at
// Figure-26 scale in virtual time.

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	swiftest "github.com/mobilebandwidth/swiftest"
)

// assignResponse is the /assign payload: the lease plus the ranked pool,
// ready to feed a client's -servers list.
type assignResponse struct {
	LeaseServer int                  `json:"lease_server"`
	LeaseSeq    uint64               `json:"lease_seq"`
	Servers     []swiftest.ServerAddr `json:"servers"`
	// Token is the hex session auth token minted for this lease; empty on
	// open (unkeyed) fleets. Clients present it at v2 session setup.
	Token string `json:"token,omitempty"`
}

type registerResponse struct {
	ID int `json:"id"`
	// HeartbeatMS is the liveness window; beat at least once per window.
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

func dispatch(args []string) error {
	fs := flag.NewFlagSet("dispatch", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7900", "HTTP listen address for the control plane")
	planPath := fs.String("plan", "", "deployment-plan artifact from `deployplan -json` (required)")
	perTest := fs.Float64("pertest", 5, "per-test bandwidth reservation (Mbps) for admission caps")
	window := fs.Duration("window", 0, "heartbeat liveness window (0 selects the 500ms default)")
	authKey := fs.Uint64("authkey", 0, "fleet auth key; non-zero mints a session token per lease (give servers the same -authkey)")
	tokenTTL := fs.Duration("token-ttl", 0, "lease token lifetime; keyed servers reject session setups with stale tokens (0 = tokens never expire)")
	verbose := fs.Bool("v", false, "log assignments, rejections, drains, and server deaths")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tokenTTL != 0 && *authKey == 0 {
		return fmt.Errorf("-token-ttl needs -authkey: open fleets mint no tokens to expire")
	}
	if *planPath == "" {
		return fmt.Errorf("no deployment plan given (use -plan artifact.json; see deployplan -json)")
	}
	art, err := swiftest.LoadDeployArtifact(*planPath)
	if err != nil {
		return err
	}
	metrics := swiftest.NewMetricsRegistry()
	d, err := swiftest.NewFleetDispatcherFromArtifact(art, swiftest.FleetConfig{
		PerTestMbps:     *perTest,
		HeartbeatWindow: *window,
		AuthKey:         *authKey,
		TokenTTL:        *tokenTTL,
		Metrics:         metrics,
	})
	if err != nil {
		return err
	}
	logf := func(format string, a ...any) {
		if *verbose {
			fmt.Printf(format+"\n", a...)
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler())
	mux.HandleFunc("/register", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		uplink, _ := strconv.ParseFloat(q.Get("uplink"), 64)
		id, err := d.Register(q.Get("addr"), q.Get("domain"), uplink)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		logf("register server=%d addr=%s domain=%s uplink=%.0f", id, q.Get("addr"), q.Get("domain"), uplink)
		writeJSON(w, registerResponse{ID: id, HeartbeatMS: heartbeatWindowMS(*window)})
	})
	mux.HandleFunc("/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.URL.Query().Get("id"))
		if err != nil {
			http.Error(w, "bad id", http.StatusBadRequest)
			return
		}
		if err := d.Heartbeat(id); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/assign", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		key, _ := strconv.ParseUint(q.Get("key"), 10, 64)
		claim, _ := strconv.ParseFloat(q.Get("claim"), 64)
		a, pool, err := d.DispatchContext(r.Context(), swiftest.FleetClient{
			Key: key, Domain: q.Get("domain"), ClaimMbps: claim,
		})
		if err != nil {
			var sat *swiftest.SaturatedError
			if errors.As(err, &sat) {
				w.Header().Set("Retry-After", strconv.Itoa(int(sat.RetryAfter.Seconds()+1)))
				logf("reject client=%d retry-after=%v", key, sat.RetryAfter)
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			logf("reject client=%d err=%v", key, err)
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		logf("assign client=%d server=%d addr=%s pool=%d", key, a.Lease.Server, pool[0].Addr, len(pool))
		out := assignResponse{LeaseServer: a.Lease.Server, LeaseSeq: a.Lease.Seq, Servers: pool}
		if !a.Token.IsZero() {
			out.Token = a.Token.String()
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/release", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		server, _ := strconv.Atoi(q.Get("server"))
		seq, _ := strconv.ParseUint(q.Get("seq"), 10, 64)
		d.Release(swiftest.FleetLease{Server: server, Seq: seq})
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/drain", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.URL.Query().Get("id"))
		if err != nil {
			http.Error(w, "bad id", http.StatusBadRequest)
			return
		}
		if err := d.Drain(id); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		logf("drain server=%d", id)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/servers", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, d.Servers())
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("control-plane listener: %w", err)
	}
	defer ln.Close()
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	fmt.Printf("fleet dispatch on http://%s (plan: %d servers, %d-session capacity)\n",
		ln.Addr(), art.Plan.Servers(), d.Capacity())

	// The clock loop: fold heartbeat windows twice per window and narrate
	// state transitions (server_dead, drain completion) for the logs.
	tick := time.NewTicker(heartbeatWindowDur(*window) / 2) //lint:allow walltime the live control plane advances on wall time, like transport
	defer tick.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	lastState := map[int]string{}
	for {
		select {
		case <-tick.C:
			d.Advance()
			for _, s := range d.Servers() {
				state := s.State.String()
				if prev, ok := lastState[s.ID]; ok && prev != state {
					switch state {
					case "dead":
						fmt.Printf("server_dead server=%d addr=%s silent=%d\n", s.ID, s.Addr, s.Silent)
					default:
						logf("server_state server=%d addr=%s %s -> %s", s.ID, s.Addr, prev, state)
					}
				}
				lastState[s.ID] = state
			}
		case <-sig:
			fmt.Println("dispatch shutting down")
			return nil
		}
	}
}

func heartbeatWindowDur(w time.Duration) time.Duration {
	if w <= 0 {
		return 500 * time.Millisecond
	}
	return w
}

func heartbeatWindowMS(w time.Duration) int64 {
	return heartbeatWindowDur(w).Milliseconds()
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// registerWithDispatcher joins a running control plane and starts the
// heartbeat loop. Beats are gated on the server's fault plan: a blacked-out
// server goes silent on the control plane exactly as on the data plane, so
// the dispatcher's K-silent-windows rule kills it. Returns a stop function
// that drains the server out of the fleet.
func registerWithDispatcher(dispatchURL string, srv *swiftest.Server, domain string, uplink float64) (stop func(), err error) {
	hc := &http.Client{Timeout: 5 * time.Second}
	v := url.Values{}
	v.Set("addr", srv.Addr())
	v.Set("domain", domain)
	v.Set("uplink", strconv.FormatFloat(uplink, 'f', -1, 64))
	resp, err := hc.Post(dispatchURL+"/register?"+v.Encode(), "", nil)
	if err != nil {
		return nil, fmt.Errorf("registering with %s: %w", dispatchURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("registering with %s: HTTP %d", dispatchURL, resp.StatusCode)
	}
	var reg registerResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		return nil, fmt.Errorf("decoding register response: %w", err)
	}
	fmt.Printf("registered with %s as fleet server %d (heartbeat every %dms)\n",
		dispatchURL, reg.ID, reg.HeartbeatMS/2)

	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		// Beat twice per liveness window so one lost datagram is harmless.
		tick := time.NewTicker(time.Duration(reg.HeartbeatMS) * time.Millisecond / 2) //lint:allow walltime live heartbeat loop against a real control plane
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				if srv.BlackedOut() {
					continue // silent: let the dispatcher see the blackout
				}
				resp, err := hc.Post(fmt.Sprintf("%s/heartbeat?id=%d", dispatchURL, reg.ID), "", nil)
				if err == nil {
					resp.Body.Close()
				}
			}
		}
	}()
	return func() {
		close(done)
		<-exited
		resp, err := hc.Post(fmt.Sprintf("%s/drain?id=%d", dispatchURL, reg.ID), "", nil)
		if err == nil {
			resp.Body.Close()
		}
	}, nil
}

// fetchAssignment asks a dispatch control plane for a ranked server pool.
func fetchAssignment(ctx context.Context, dispatchURL string, key uint64, domain string) (assignResponse, error) {
	hc := &http.Client{Timeout: 5 * time.Second}
	v := url.Values{}
	v.Set("key", strconv.FormatUint(key, 10))
	v.Set("domain", domain)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, dispatchURL+"/assign?"+v.Encode(), nil)
	if err != nil {
		return assignResponse{}, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return assignResponse{}, fmt.Errorf("asking %s for a server: %w", dispatchURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			return assignResponse{}, fmt.Errorf("%w: dispatcher says retry after %ss", swiftest.ErrFleetSaturated, ra)
		}
		return assignResponse{}, fmt.Errorf("%w: dispatcher has no capacity", swiftest.ErrFleetSaturated)
	}
	if resp.StatusCode != http.StatusOK {
		return assignResponse{}, fmt.Errorf("dispatcher: HTTP %d", resp.StatusCode)
	}
	var a assignResponse
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		return assignResponse{}, fmt.Errorf("decoding assignment: %w", err)
	}
	if len(a.Servers) == 0 {
		return assignResponse{}, fmt.Errorf("dispatcher returned an empty pool")
	}
	return a, nil
}

// releaseAssignment frees the dispatch lease after the test.
func releaseAssignment(dispatchURL string, a assignResponse) {
	hc := &http.Client{Timeout: 5 * time.Second}
	resp, err := hc.Post(fmt.Sprintf("%s/release?server=%d&seq=%d", dispatchURL, a.LeaseServer, a.LeaseSeq), "", nil)
	if err == nil {
		resp.Body.Close()
	}
}

func loadgenCmd(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	planPath := fs.String("plan", "", "deployment-plan artifact from `deployplan -json` (required)")
	peak := fs.Int("peak", 1000, "target concurrent tests at the diurnal peak")
	duration := fs.Duration("duration", 30*time.Second, "virtual horizon (one diurnal day is compressed into it)")
	perTest := fs.Float64("pertest", 1, "per-test offered rate and admission sizing (Mbps)")
	workers := fs.Int("workers", 4, "goroutines advancing per-server links (does not affect results)")
	seed := fs.Int64("seed", 1, "run seed")
	faultsPath := fs.String("faults", "", "JSON fault plan to inject (server indexes = fleet slot IDs)")
	profileName := fs.String("profile", "", "drive server uplinks through a RAN scenario profile (see `swiftest profiles`)")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateWorkers(*workers); err != nil {
		return err
	}
	if *planPath == "" {
		return fmt.Errorf("no deployment plan given (use -plan artifact.json; see deployplan -json)")
	}
	art, err := swiftest.LoadDeployArtifact(*planPath)
	if err != nil {
		return err
	}
	cfg := swiftest.LoadgenConfig{
		Plan:           art.Plan,
		Placements:     art.Placements,
		PeakConcurrent: *peak,
		Duration:       *duration,
		PerTestMbps:    *perTest,
		Workers:        *workers,
		Seed:           *seed,
	}
	if *faultsPath != "" {
		plan, err := swiftest.LoadFaultPlan(*faultsPath)
		if err != nil {
			return err
		}
		cfg.Faults = plan.Injector()
	}
	if *profileName != "" {
		p, err := swiftest.LookupProfile(*profileName)
		if err != nil {
			return err
		}
		cfg.Profile = p
	}
	rep, err := swiftest.GenerateLoad(context.Background(), cfg)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("virtual time   : %v (one diurnal day compressed)\n", rep.Duration)
	fmt.Printf("tests          : %d started, %d completed, %d rejected, %d abandoned\n",
		rep.TestsStarted, rep.TestsCompleted, rep.TestsRejected, rep.TestsAbandoned)
	fmt.Printf("peak concurrent: %d\n", rep.PeakConcurrent)
	fmt.Printf("rejection rate : %.2f%%\n", rep.RejectionRate*100)
	fmt.Printf("failovers      : %d\n", rep.Failovers)
	fmt.Printf("mean achieved  : %.2f Mbps per test\n", rep.MeanAchievedMbps)
	for _, s := range rep.Servers {
		fmt.Printf("server %-2d %-22s %7.1f MB delivered, %5.1f%% utilization, peak %d sessions\n",
			s.ID, s.Addr, s.DeliveredMB, s.Utilization*100, s.PeakSessions)
	}
	fmt.Printf("assignment digest: %s\n", rep.AssignmentDigest)
	return nil
}
