// Command datasetgen emits a synthetic measurement dataset as JSONL — the
// stand-in for the paper's 23.6M-test corpus, calibrated to every finding of
// §3 (see internal/dataset). The output feeds cmd/analyze.
//
// Generation and encoding are sharded: record i always comes from shard
// i/ShardSize of the seed's deterministic stream, so the output bytes depend
// only on (-n, -year, -seed) — never on -workers, which is purely a
// throughput knob.
//
// Usage:
//
//	datasetgen [-n 1000000] [-year 2021] [-seed 1] [-workers 0] [-o records.jsonl]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/mobilebandwidth/swiftest/internal/dataset"
)

func main() {
	n := flag.Int("n", 1_000_000, "number of records to generate")
	year := flag.Int("year", 2021, "measurement year (2020 or 2021)")
	seed := flag.Int64("seed", 1, "RNG seed")
	workers := flag.Int("workers", 0, "generation workers (0 = GOMAXPROCS); output is identical for any value")
	out := flag.String("o", "-", "output file (\"-\" for stdout)")
	flag.Parse()

	if err := run(*n, *year, *seed, *workers, *out); err != nil {
		fmt.Fprintln(os.Stderr, "datasetgen:", err)
		os.Exit(1)
	}
}

func run(n, year int, seed int64, workers int, out string) error {
	gen, err := dataset.NewGenerator(dataset.Config{Year: year, Seed: seed})
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	// Stream in shard-aligned batches to bound memory for very large n:
	// each batch is generated and JSON-encoded in parallel, then written in
	// order.
	const batch = 16 * dataset.ShardSize
	for off := 0; off < n; off += batch {
		size := batch
		if n-off < size {
			size = n - off
		}
		records := gen.GenerateRange(off, size, workers)
		if err := dataset.WriteJSONLParallel(w, records, workers); err != nil {
			return err
		}
	}
	if out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %d records for %d to %s\n", n, year, out)
	}
	return nil
}
