// Command datasetgen emits a synthetic measurement dataset as JSONL — the
// stand-in for the paper's 23.6M-test corpus, calibrated to every finding of
// §3 (see internal/dataset). The output feeds cmd/analyze.
//
// Usage:
//
//	datasetgen [-n 1000000] [-year 2021] [-seed 1] [-o records.jsonl]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/mobilebandwidth/swiftest/internal/dataset"
)

func main() {
	n := flag.Int("n", 1_000_000, "number of records to generate")
	year := flag.Int("year", 2021, "measurement year (2020 or 2021)")
	seed := flag.Int64("seed", 1, "RNG seed")
	out := flag.String("o", "-", "output file (\"-\" for stdout)")
	flag.Parse()

	if err := run(*n, *year, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "datasetgen:", err)
		os.Exit(1)
	}
}

func run(n, year int, seed int64, out string) error {
	gen, err := dataset.NewGenerator(dataset.Config{Year: year, Seed: seed})
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	// Stream in batches to bound memory for very large n.
	const batch = 100_000
	for remaining := n; remaining > 0; {
		size := batch
		if remaining < size {
			size = remaining
		}
		if err := dataset.WriteJSONL(w, gen.Generate(size)); err != nil {
			return err
		}
		remaining -= size
	}
	if out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %d records for %d to %s\n", n, year, out)
	}
	return nil
}
