package main

import (
	"path/filepath"
	"testing"
	"time"

	"github.com/mobilebandwidth/swiftest/internal/deploy"
	"github.com/mobilebandwidth/swiftest/internal/fleet"
)

// The -json artifact must round-trip, unmodified, into a live fleet
// dispatcher: what the planner writes is exactly what the control plane
// boots from.
func TestArtifactFeedsFleetDispatcher(t *testing.T) {
	w := deploy.Workload{
		TestsPerDay:     200000,
		AvgTestDuration: 1200 * time.Millisecond,
		AvgBandwidth:    40,
		PeakFactor:      2,
	}
	plan, err := deploy.PlanPurchase(deploy.SyntheticCatalogue(), w.RequiredMbps(), 0.075,
		deploy.PlanOptions{MinServers: 3})
	if err != nil {
		t.Fatal(err)
	}
	placements, err := deploy.PlaceServers(plan, nil)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "plan.json")
	if err := writeArtifact(path, w, plan, placements); err != nil {
		t.Fatalf("writeArtifact: %v", err)
	}

	art, err := deploy.LoadArtifact(path)
	if err != nil {
		t.Fatalf("LoadArtifact: %v", err)
	}
	d, err := fleet.NewDispatcherFromArtifact(art, fleet.Config{ActivatePlanned: true})
	if err != nil {
		t.Fatalf("NewDispatcherFromArtifact: %v", err)
	}
	if got := len(d.Registry().Servers()); got != plan.Servers() {
		t.Errorf("dispatcher has %d servers, plan has %d", got, plan.Servers())
	}
	if d.Capacity() <= 0 {
		t.Errorf("dispatcher capacity %d, want > 0", d.Capacity())
	}
	if _, err := d.Dispatch(fleet.ClientInfo{Key: 1, Domain: "Beijing"}, 0); err != nil {
		t.Errorf("Dispatch from artifact-built fleet: %v", err)
	}
}
