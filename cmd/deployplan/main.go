// Command deployplan runs the §5.2 cost-effective server deployment planner:
// it estimates the egress bandwidth a test workload needs, solves the
// integer-linear purchase problem with branch-and-bound, and places the
// purchased servers across the eight core-IXP domains.
//
// Usage:
//
//	deployplan [-tests-per-day 10000] [-avg-duration 1.2s] [-avg-bandwidth 300]
//	           [-peak 3] [-margin 0.075] [-min-servers 20] [-json plan.json]
//
// -json writes the plan as a deployment artifact that `swiftest dispatch`
// and `swiftest loadgen` consume.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/mobilebandwidth/swiftest/internal/deploy"
)

func main() {
	testsPerDay := flag.Float64("tests-per-day", 10000, "expected daily bandwidth tests")
	avgDur := flag.Duration("avg-duration", 1200*time.Millisecond, "average test duration")
	avgBW := flag.Float64("avg-bandwidth", 300, "average client access bandwidth (Mbps)")
	peak := flag.Float64("peak", 3, "peak-to-mean concurrency factor")
	margin := flag.Float64("margin", 0.075, "burst headroom over the estimate (0.05–0.10)")
	minServers := flag.Int("min-servers", 20, "geographic-coverage minimum server count")
	jsonPath := flag.String("json", "", "write the plan as a deployment artifact to this file")
	flag.Parse()

	if err := run(*testsPerDay, *avgDur, *avgBW, *peak, *margin, *minServers, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "deployplan:", err)
		os.Exit(1)
	}
}

func run(testsPerDay float64, avgDur time.Duration, avgBW, peak, margin float64, minServers int, jsonPath string) error {
	w := deploy.Workload{
		TestsPerDay:     testsPerDay,
		AvgTestDuration: avgDur,
		AvgBandwidth:    avgBW,
		PeakFactor:      peak,
	}
	required := w.RequiredMbps()
	fmt.Printf("workload: %.0f tests/day × %v × %.0f Mbps, peak ×%.1f\n",
		testsPerDay, avgDur, avgBW, peak)
	fmt.Printf("estimated egress requirement: %.0f Mbps (+%.1f %% margin → %.0f Mbps)\n",
		required, margin*100, required*(1+margin))

	catalogue := deploy.SyntheticCatalogue()
	plan, err := deploy.PlanPurchase(catalogue, required, margin, deploy.PlanOptions{MinServers: minServers})
	if err != nil {
		return err
	}
	fmt.Printf("\npurchase plan ($%.2f/month, %.0f Mbps total, %d branch-and-bound nodes):\n",
		plan.MonthlyCost, plan.TotalMbps, plan.NodesExplored)
	for _, pu := range plan.Purchases {
		fmt.Printf("  %3d × %-14s %6.0f Mbps  $%8.2f/mo each\n",
			pu.Count, pu.Config.Name, pu.Config.BandwidthMbps, pu.Config.PricePerMonth)
	}

	placements, err := deploy.PlaceServers(plan, nil)
	if err != nil {
		return err
	}
	fmt.Println("\nplacement (one entry per core IXP domain, §5.2):")
	for _, p := range placements {
		fmt.Printf("  %-10s %2d servers, %6.0f Mbps\n", p.Domain, len(p.Servers), p.Mbps)
	}

	legacy, err := deploy.LegacyBTSAppFleet(catalogue)
	if err == nil {
		fmt.Printf("\nvs BTS-APP's allocation (50 × 1 Gbps): $%.2f/mo — %.1f× more expensive\n",
			legacy.MonthlyCost, legacy.MonthlyCost/plan.MonthlyCost)
	}

	if jsonPath != "" {
		if err := writeArtifact(jsonPath, w, plan, placements); err != nil {
			return err
		}
		fmt.Printf("\ndeployment artifact written to %s\n", jsonPath)
	}
	return nil
}

// writeArtifact saves the plan in the schema `swiftest dispatch` loads.
func writeArtifact(path string, w deploy.Workload, plan deploy.Plan, placements []deploy.Placement) error {
	art := deploy.NewArtifact(w, plan, placements)
	if err := art.Validate(); err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := art.Encode(f); err != nil {
		f.Close()
		return fmt.Errorf("writing artifact: %w", err)
	}
	return f.Close()
}
