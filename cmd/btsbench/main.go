// Command btsbench regenerates every table and figure of the paper's
// evaluation and prints a paper-vs-measured report (the source of
// EXPERIMENTS.md).
//
// Usage:
//
//	btsbench [-quick] [-seed N] [-workers 0] [-only fig12,fig22,cost]
//
// Without -only it runs all experiments in order. -quick shrinks record
// counts and campaign sizes for a fast smoke run. The corpus comes from the
// sharded deterministic generator, so -workers changes only how fast it is
// built, never its contents.
//
//lint:allow walltime benchmark harness reports real elapsed time
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/mobilebandwidth/swiftest/internal/analysis"
	"github.com/mobilebandwidth/swiftest/internal/baseline"
	"github.com/mobilebandwidth/swiftest/internal/core"
	"github.com/mobilebandwidth/swiftest/internal/dataset"
	"github.com/mobilebandwidth/swiftest/internal/deploy"
	"github.com/mobilebandwidth/swiftest/internal/earlystop"
	"github.com/mobilebandwidth/swiftest/internal/exper"
	"github.com/mobilebandwidth/swiftest/internal/linksim"
	"github.com/mobilebandwidth/swiftest/internal/spectrum"
	"github.com/mobilebandwidth/swiftest/internal/stats"
)

func main() {
	quick := flag.Bool("quick", false, "small record counts and campaigns")
	seed := flag.Int64("seed", 1, "base RNG seed")
	workers := flag.Int("workers", 0, "corpus generation workers (0 = GOMAXPROCS); contents are worker-invariant")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. fig1,fig22,cost)")
	flag.Parse()

	r := &runner{seed: *seed, workers: *workers}
	if *quick {
		r.records = 150000
		r.pairN = 40
		r.threeWayN = 20
		r.utilDays = 3
	} else {
		r.records = 600000
		r.pairN = 150
		r.threeWayN = 60
		r.utilDays = 30
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}

	type experiment struct {
		id string
		fn func(*runner)
	}
	experiments := []experiment{
		{"general", (*runner).general}, {"fig1", (*runner).fig1}, {"fig2", (*runner).fig2}, {"fig3", (*runner).fig3},
		{"fig4", (*runner).fig4}, {"tab1", (*runner).tab1}, {"fig5", (*runner).fig5and6},
		{"fig7", (*runner).fig7}, {"tab2", (*runner).tab2}, {"fig8", (*runner).fig8and9},
		{"fig10", (*runner).fig10}, {"fig11", (*runner).fig11and12},
		{"spatial", (*runner).spatial},
		{"fig13", (*runner).fig13to15}, {"fig16", (*runner).fig16},
		{"fig17", (*runner).fig17}, {"fig18", (*runner).fig18and19},
		{"fig20", (*runner).fig20to22}, {"fig23", (*runner).fig23to25},
		{"fig26", (*runner).fig26}, {"trace", (*runner).trace}, {"cost", (*runner).cost},
		{"sec7", (*runner).sec7}, {"scenarios", (*runner).scenarios},
		{"earlystop", (*runner).earlystop},
	}
	aliases := map[string]string{
		"fig6": "fig5", "fig9": "fig8", "fig12": "fig11", "fig14": "fig13",
		"fig15": "fig13", "fig19": "fig18", "fig21": "fig20", "fig22": "fig20",
		"fig24": "fig23", "fig25": "fig23",
	}
	for id, target := range aliases {
		if want[id] {
			want[target] = true
		}
	}

	start := time.Now()
	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		e.fn(r)
	}
	fmt.Printf("\nall experiments completed in %v\n", time.Since(start).Round(time.Millisecond))
	if r.failed {
		os.Exit(1)
	}
}

type runner struct {
	seed      int64
	workers   int
	records   int
	pairN     int
	threeWayN int
	utilDays  int
	failed    bool

	recs21, recs20 []dataset.Record
}

func (r *runner) corpus() ([]dataset.Record, []dataset.Record) {
	if r.recs21 == nil {
		r.recs21 = dataset.MustNewGenerator(dataset.Config{Year: 2021, Seed: r.seed}).
			GenerateParallel(r.records, r.workers)
		r.recs20 = dataset.MustNewGenerator(dataset.Config{Year: 2020, Seed: r.seed + 1}).
			GenerateParallel(r.records/2, r.workers)
	}
	return r.recs20, r.recs21
}

func header(title string) {
	fmt.Printf("\n## %s\n\n", title)
}

func row(label string, paper, measured string) {
	fmt.Printf("%-44s paper: %-18s measured: %s\n", label, paper, measured)
}

// general prints the §3.1 general statistics: technology shares and the
// station diversity behind the tests.
func (r *runner) general() {
	_, r21 := r.corpus()
	header("§3.1 — general statistics")
	counts := map[dataset.Tech]int{}
	stations := map[dataset.Tech]map[uint32]bool{}
	for _, rec := range r21 {
		counts[rec.Tech]++
		m := stations[rec.Tech]
		if m == nil {
			m = map[uint32]bool{}
			stations[rec.Tech] = m
		}
		m[rec.StationID] = true
	}
	total := len(r21)
	row("WiFi / 4G / 5G test shares", "89.1 % / 6.9 % / 3.8 %",
		fmt.Sprintf("%.1f %% / %.1f %% / %.1f %%",
			100*float64(counts[dataset.TechWiFi])/float64(total),
			100*float64(counts[dataset.Tech4G])/float64(total),
			100*float64(counts[dataset.Tech5G])/float64(total)))
	bs := len(stations[dataset.Tech4G]) + len(stations[dataset.Tech5G]) + len(stations[dataset.Tech3G])
	row("distinct stations (BSes vs APs)", "2.04M BSes, 4.47M APs (23.6M tests)",
		fmt.Sprintf("%d BSes, %d APs (%d tests)", bs, len(stations[dataset.TechWiFi]), total))
}

// fig1 prints the year-over-year technology averages.
func (r *runner) fig1() {
	r20, r21 := r.corpus()
	a20 := analysis.AverageByTech(r20)
	a21 := analysis.AverageByTech(r21)
	header("Figure 1 — average 4G/5G/WiFi bandwidth, 2020 vs 2021 (Mbps)")
	row("4G 2020 → 2021", "68 → 53",
		fmt.Sprintf("%.0f → %.0f", a20.Mean[dataset.Tech4G], a21.Mean[dataset.Tech4G]))
	row("5G 2020 → 2021", "343 → 305",
		fmt.Sprintf("%.0f → %.0f", a20.Mean[dataset.Tech5G], a21.Mean[dataset.Tech5G]))
	row("WiFi 2020 → 2021", "132 → 137",
		fmt.Sprintf("%.0f → %.0f", a20.Mean[dataset.TechWiFi], a21.Mean[dataset.TechWiFi]))
	row("overall cellular 2020 → 2021", "117 → 135",
		fmt.Sprintf("%.0f → %.0f", analysis.CellularAverage(r20), analysis.CellularAverage(r21)))
}

func (r *runner) fig2() {
	_, r21 := r.corpus()
	rows := analysis.ByAndroidVersion(r21)
	header("Figure 2 — average bandwidth by Android version (Mbps)")
	fmt.Printf("%-8s %8s %8s %8s\n", "version", "4G", "5G", "WiFi")
	for _, vr := range rows {
		fmt.Printf("%-8d %8.0f %8.0f %8.0f\n", vr.Version,
			vr.Mean[dataset.Tech4G], vr.Mean[dataset.Tech5G], vr.Mean[dataset.TechWiFi])
	}
	fmt.Println("paper: bandwidth rises with the Android version for every technology")
}

func (r *runner) fig3() {
	_, r21 := r.corpus()
	rows := analysis.ByISP(r21)
	header("Figure 3 — average bandwidth by ISP (Mbps)")
	fmt.Printf("%-8s %8s %8s %8s\n", "ISP", "4G", "5G", "WiFi")
	for _, ir := range rows {
		fmt.Printf("%-8s %8.0f %8.0f %8.0f\n", ir.ISP,
			ir.Mean[dataset.Tech4G], ir.Mean[dataset.Tech5G], ir.Mean[dataset.TechWiFi])
	}
	fmt.Println("paper: similar 4G across ISPs; ISP-3 leads 5G and WiFi; ISP-4 5G lowest (700 MHz band)")
}

func (r *runner) fig4() {
	_, r21 := r.corpus()
	d := analysis.TechDistribution(r21, dataset.Tech4G)
	header("Figure 4 — 4G bandwidth distribution")
	row("median / mean / max (Mbps)", "22 / 53 / 813",
		fmt.Sprintf("%.0f / %.0f / %.0f", d.Median, d.Mean, d.Max))
	row("share below 10 Mbps", "26.3 %", fmt.Sprintf("%.1f %%", 100*d.FractionBelow(10)))
	row("share above 300 Mbps (LTE-A)", "6.8 % avg 403", fmt.Sprintf("%.1f %% avg %.0f",
		100*d.FractionAbove(300), d.MeanAbove(300)))
}

func (r *runner) tab1() {
	header("Table 1 — the nine LTE bands")
	fmt.Printf("%-6s %-18s %-10s %s\n", "band", "DL spectrum (MHz)", "max chan", "ISPs")
	for _, b := range spectrum.LTEBands() {
		var isps []string
		for _, i := range b.ISPs {
			isps = append(isps, i.String())
		}
		fmt.Printf("%-6s %5.0f – %-10.0f %6.0f MHz %s\n",
			b.Name, b.DLLowMHz, b.DLHighMHz, b.MaxChannelMHz, strings.Join(isps, ", "))
	}
	row("refarmed share of H-Band spectrum", "58.2 %",
		fmt.Sprintf("%.1f %%", 100*spectrum.RefarmedHBandFraction()))
}

func (r *runner) fig5and6() {
	_, r21 := r.corpus()
	rows := analysis.ByBand(r21, spectrum.LTE)
	header("Figures 5 & 6 — LTE per-band bandwidth and load")
	fmt.Printf("%-6s %10s %10s %8s\n", "band", "mean Mbps", "tests", "H-band")
	for _, br := range rows {
		note := ""
		if br.Biased {
			note = " (biased: tiny sample)"
		}
		fmt.Printf("%-6s %10.1f %10d %8v%s\n", br.Band.Name, br.Mean, br.Count, br.HBand, note)
	}
	h, top, name := analysis.HBandShare(rows)
	row("H-band test share", "85.6 %", fmt.Sprintf("%.1f %%", 100*h))
	row("busiest band", "B3 at 55 %", fmt.Sprintf("%s at %.0f %%", name, 100*top))
}

func (r *runner) fig7() {
	_, r21 := r.corpus()
	d := analysis.TechDistribution(r21, dataset.Tech5G)
	header("Figure 7 — 5G bandwidth distribution")
	row("median / mean / max (Mbps)", "273 / 303 / 1032",
		fmt.Sprintf("%.0f / %.0f / %.0f", d.Median, d.Mean, d.Max))
}

func (r *runner) tab2() {
	header("Table 2 — the five 5G bands")
	fmt.Printf("%-6s %-18s %-10s %-22s %s\n", "band", "DL spectrum (MHz)", "max chan", "refarmed from (width)", "ISPs")
	for _, b := range spectrum.NRBands() {
		var isps []string
		for _, i := range b.ISPs {
			isps = append(isps, i.String())
		}
		ref := "dedicated"
		if b.IsRefarmed() {
			ref = fmt.Sprintf("%s (%.0f MHz)", b.RefarmedFrom, b.ContiguousRefarmedMHz)
		}
		fmt.Printf("%-6s %5.0f – %-10.0f %6.0f MHz %-22s %s\n",
			b.Name, b.DLLowMHz, b.DLHighMHz, b.MaxChannelMHz, ref, strings.Join(isps, ", "))
	}
}

func (r *runner) fig8and9() {
	_, r21 := r.corpus()
	rows := analysis.ByBand(r21, spectrum.NR)
	header("Figures 8 & 9 — 5G per-band bandwidth and load")
	fmt.Printf("%-6s %10s %10s %10s\n", "band", "mean Mbps", "tests", "refarmed")
	for _, br := range rows {
		fmt.Printf("%-6s %10.1f %10d %10v\n", br.Band.Name, br.Mean, br.Count, br.Band.IsRefarmed())
	}
	fmt.Println("paper: N78 332, N41 312, N1 103, N28 113 Mbps; N78 carries most tests; N79 ≈ 3 tests")
}

func (r *runner) fig10() {
	_, r21 := r.corpus()
	rows := analysis.Diurnal(r21, dataset.Tech5G)
	header("Figure 10 — 5G diurnal pattern (tests/hour share, mean Mbps)")
	var total int
	for _, dr := range rows {
		total += dr.Tests
	}
	for h := 0; h < 24; h += 2 {
		a, b := rows[h], rows[h+1]
		share := float64(a.Tests+b.Tests) / float64(total) * 100
		mean := (a.Mean*float64(a.Tests) + b.Mean*float64(b.Tests)) / float64(a.Tests+b.Tests)
		fmt.Printf("%02d–%02dh  load %5.1f %%  mean %6.0f Mbps\n", h, h+2, share, mean)
	}
	fmt.Println("paper: bottom 276 Mbps at 21–23 h (BS sleeping), peak 334 at 3–5 h, 308 at 15–17 h")
}

func (r *runner) fig11and12() {
	_, r21 := r.corpus()
	rows5 := analysis.ByRSSLevel(r21, dataset.Tech5G)
	rows4 := analysis.ByRSSLevel(r21, dataset.Tech4G)
	header("Figures 11 & 12 — 5G RSS level vs SNR and bandwidth")
	fmt.Printf("%-6s %10s %12s %12s\n", "level", "SNR dB", "5G Mbps", "4G Mbps")
	for i := range rows5 {
		fmt.Printf("%-6d %10.1f %12.0f %12.0f\n",
			rows5[i].Level, rows5[i].MeanSNR, rows5[i].MeanBW, rows4[i].MeanBW)
	}
	fmt.Println("paper: 5G rises 204→314 through level 4 then drops at level 5; 4G stays monotone")
}

// spatial prints the §3.1 spatial-disparity findings.
func (r *runner) spatial() {
	_, r21 := r.corpus()
	header("§3.1 — spatial disparity")
	lo4, hi4, _ := analysis.CityRange(r21, dataset.Tech4G, 30)
	lo5, hi5, _ := analysis.CityRange(r21, dataset.Tech5G, 30)
	loW, hiW, _ := analysis.CityRange(r21, dataset.TechWiFi, 30)
	row("per-city 4G range (Mbps)", "28–119", fmt.Sprintf("%.0f–%.0f", lo4, hi4))
	row("per-city 5G range (Mbps)", "113–428", fmt.Sprintf("%.0f–%.0f", lo5, hi5))
	row("per-city WiFi range (Mbps)", "83–256", fmt.Sprintf("%.0f–%.0f", loW, hiW))
	row("urban/rural 4G ratio", "≈1.24", fmt.Sprintf("%.2f", analysis.UrbanRuralRatio(r21, dataset.Tech4G)))
	row("urban/rural 5G ratio", "≈1.33", fmt.Sprintf("%.2f", analysis.UrbanRuralRatio(r21, dataset.Tech5G)))
	row("cities with unbalanced 4G/5G", "41 %",
		fmt.Sprintf("%.0f %%", 100*analysis.UnbalancedCityShare(r21, 20)))
}

func (r *runner) fig13to15() {
	_, r21 := r.corpus()
	header("Figures 13–15 — WiFi bandwidth by standard and radio band (Mbps)")
	all := analysis.WiFiDistributions(r21, nil)
	g24, g5 := dataset.Band24GHz, dataset.Band5GHz
	on24 := analysis.WiFiDistributions(r21, &g24)
	on5 := analysis.WiFiDistributions(r21, &g5)
	fmt.Printf("%-10s %16s %16s %16s\n", "standard", "overall", "2.4 GHz", "5 GHz")
	for _, std := range []int{4, 5, 6} {
		line := fmt.Sprintf("WiFi %d    ", std)
		for _, bd := range []analysis.WiFiBreakdown{all, on24, on5} {
			if d, ok := bd.ByStandard[std]; ok && d.Count > 0 {
				line += fmt.Sprintf(" mean %4.0f med %4.0f", d.Mean, d.Median)
			} else {
				line += fmt.Sprintf("%17s", "—")
			}
		}
		fmt.Println(line)
	}
	fmt.Println("paper: overall 59/208/345; 2.4 GHz 39/—/83; 5 GHz 195/208/351 (WiFi4 ≈ WiFi5 on 5 GHz)")
	row("≤200 Mbps broadband plans, all WiFi", "≈64 %",
		fmt.Sprintf("%.0f %%", 100*analysis.PlanShareAtOrBelow(r21, 200, 0)))
	row("≤200 Mbps broadband plans, WiFi 6", "≈39 %",
		fmt.Sprintf("%.0f %%", 100*analysis.PlanShareAtOrBelow(r21, 200, 6)))
}

func (r *runner) fig16() {
	_, r21 := r.corpus()
	header("Figure 16 — WiFi 5 bandwidth PDF (multi-modal Gaussian)")
	res, err := analysis.BandwidthPDF(r21, analysis.WiFiStandardFilter(5), 1000, 5, 4000, r.seed)
	if err != nil {
		r.fail("fig16: %v", err)
		return
	}
	fmt.Printf("fitted %d modes: %v\n", res.Modes, res.Model)
	fmt.Println("paper: modes cluster near 100× broadband plan rates (100, 300, 500 Mbps)")
}

func (r *runner) fig17() {
	header("Figure 17 — TCP slow-start/ramp time by congestion control (s)")
	buckets := []float64{100, 300, 500, 700, 900, 1100}
	points := exper.SlowStartSweep(buckets, 3, r.seed)
	byAlg := map[string]map[float64]time.Duration{}
	for _, p := range points {
		if byAlg[p.Algorithm] == nil {
			byAlg[p.Algorithm] = map[float64]time.Duration{}
		}
		byAlg[p.Algorithm][p.BucketMbps] = p.MeanRamp
	}
	fmt.Printf("%-8s", "Mbps")
	for _, b := range buckets {
		fmt.Printf("%8.0f", b)
	}
	fmt.Println()
	for _, alg := range []string{"cubic", "reno", "bbr"} {
		fmt.Printf("%-8s", alg)
		for _, b := range buckets {
			fmt.Printf("%8.2f", byAlg[alg][b].Seconds())
		}
		fmt.Println()
	}
	fmt.Println("paper: Cubic worst, BBR best (≈2 s at 100 Mbps, ≈4 s at 1 Gbps); grows with bandwidth")
}

func (r *runner) fig18and19() {
	_, r21 := r.corpus()
	header("Figures 18 & 19 — 4G and 5G bandwidth PDFs (multi-modal Gaussian)")
	for tech, hi := range map[dataset.Tech]float64{dataset.Tech4G: 500, dataset.Tech5G: 1000} {
		res, err := analysis.BandwidthPDF(r21, analysis.TechFilter(tech), hi, 5, 4000, r.seed)
		if err != nil {
			r.fail("fig18/19 %v: %v", tech, err)
			continue
		}
		fmt.Printf("%-5s fitted %d modes: %v\n", tech, res.Modes, res.Model)
	}
	fmt.Println("paper: both technologies follow multi-modal Gaussian distributions (Eq. 1)")
}

func (r *runner) fig20to22() {
	header("Figures 20–22 — Swiftest vs BTS-APP back-to-back campaigns")
	paperDur := map[dataset.Tech]string{
		dataset.Tech4G: "mean 1.05 med 0.79 max 4.24", dataset.Tech5G: "mean 0.95 med 0.76 max 4.01",
		dataset.TechWiFi: "mean 0.99 med 0.75 max 4.49",
	}
	paperData := map[dataset.Tech]string{
		dataset.Tech4G: "8.2×", dataset.Tech5G: "9.0× (289→32 MB)", dataset.TechWiFi: "8.4×",
	}
	var allPairs []exper.PairResult
	for i, tech := range []dataset.Tech{dataset.Tech4G, dataset.Tech5G, dataset.TechWiFi} {
		pairs, err := exper.PairCampaign(tech, r.pairN, r.seed+int64(i)*31)
		if err != nil {
			r.fail("fig20 %v: %v", tech, err)
			continue
		}
		allPairs = append(allPairs, pairs...)
		d := exper.SwiftestDurations(pairs)
		du := exper.AverageDataUsage(pairs)
		row(fmt.Sprintf("%v duration (s)", tech), paperDur[tech],
			fmt.Sprintf("mean %.2f med %.2f max %.2f", d.Mean.Seconds(), d.Median.Seconds(), d.Max.Seconds()))
		row(fmt.Sprintf("%v data usage", tech), paperData[tech],
			fmt.Sprintf("%.1f× (%.0f→%.0f MB)", du.Ratio, du.BTSAppMB, du.SwiftestMB))
	}
	d := exper.SwiftestDurations(allPairs)
	dev := exper.Deviations(allPairs)
	row("tests within 1 s incl. 0.2 s ping", "55 %", fmt.Sprintf("%.0f %%", 100*d.WithinOneSecond))
	row("mean duration incl. ping (s)", "1.19", fmt.Sprintf("%.2f", d.IncludesPingMean.Seconds()))
	row("deviation mean / median / max", "5.1 % / 3.0 % / 56.9 %",
		fmt.Sprintf("%.1f %% / %.1f %% / %.1f %%", 100*dev.Mean, 100*dev.Median, 100*dev.Max))
	row("pairs deviating >10 % / >30 %", "16 % / 0.7 %",
		fmt.Sprintf("%.0f %% / %.1f %%", 100*dev.Above10Pct, 100*dev.Above30Pct))
}

func (r *runner) fig23to25() {
	header("Figures 23–25 — FAST vs FastBTS vs Swiftest")
	techs := []dataset.Tech{dataset.Tech4G, dataset.Tech5G, dataset.TechWiFi}
	for i, tech := range techs {
		groups, err := exper.ThreeWayCampaign(tech, r.threeWayN, r.seed+int64(i)*53)
		if err != nil {
			r.fail("fig23 %v: %v", tech, err)
			continue
		}
		cmp := exper.CompareBTSes(groups)
		fmt.Printf("%v:\n", tech)
		for _, sys := range []string{"fast", "fastbts", "swiftest"} {
			fmt.Printf("  %-9s time %6.2f s  data %7.1f MB  accuracy %.2f\n",
				sys, cmp.MeanTime[sys].Seconds(), cmp.MeanDataMB[sys], cmp.MeanAccuracy[sys])
		}
	}
	fmt.Println("paper: Swiftest 2.9–16.5× faster, 3–16.7× lighter, 8–12 % more accurate;")
	fmt.Println("       FAST ≈13.5 s / 295 MB; FastBTS least accurate (0.79)")
}

func (r *runner) fig26() {
	header("Figure 26 — Swiftest server utilization over the evaluation month")
	plan, err := deploy.PlanPurchase(deploy.SyntheticCatalogue(), 1860, 0.075, deploy.PlanOptions{MinServers: 20})
	if err != nil {
		r.fail("fig26 plan: %v", err)
		return
	}
	model, err := dataset.TechModel(dataset.Tech5G, 2021)
	if err != nil {
		r.fail("fig26 model: %v", err)
		return
	}
	rng := rand.New(rand.NewSource(r.seed))
	_ = rng
	utils, err := deploy.SimulateUtilization(plan, deploy.UtilizationOptions{
		Days:        r.utilDays,
		TestsPerDay: 10000,
		DrawBandwidth: func(rng *rand.Rand) float64 {
			return model.Sample(rng)
		},
		Seed: r.seed,
	})
	if err != nil {
		r.fail("fig26 sim: %v", err)
		return
	}
	s := stats.NewSample(utils)
	row("median / mean utilization", "4.8 % / 8.2 %",
		fmt.Sprintf("%.1f %% / %.1f %%", s.Median(), s.Mean()))
	row("P99 / P99.9 / max", "45 % / 73.2 % / 135.3 %",
		fmt.Sprintf("%.0f %% / %.0f %% / %.0f %%", s.Quantile(0.99), s.Quantile(0.999), s.Max()))
}

// trace regenerates §5.2's over-provisioning observation.
func (r *runner) trace() {
	header("§5.2 — legacy fleet over-provisioning")
	model, err := dataset.TechModel(dataset.Tech5G, 2021)
	if err != nil {
		r.fail("trace model: %v", err)
		return
	}
	model4, err := dataset.TechModel(dataset.Tech4G, 2021)
	if err != nil {
		r.fail("trace model: %v", err)
		return
	}
	days := 2
	if r.utilDays > 7 {
		days = 7
	}
	tr, err := deploy.GenerateTrace(deploy.TraceOptions{
		Days:        days,
		TestsPerDay: 200000,
		DrawBandwidth: func(rng *rand.Rand) float64 {
			if rng.Float64() < 0.35 {
				return model.Sample(rng)
			}
			return model4.Sample(rng)
		},
		Seed: r.seed,
	})
	if err != nil {
		r.fail("trace: %v", err)
		return
	}
	sum, err := deploy.SummarizeTrace(tr, deploy.LegacyFleetMbps)
	if err != nil {
		r.fail("trace summary: %v", err)
		return
	}
	row("time below 5 % of fleet capacity", "98 %", fmt.Sprintf("%.1f %%", 100*sum.TimeBelow5Pct))
	row("fleet capacity vs mean requirement", "—",
		fmt.Sprintf("%.0f Mbps vs %.0f Mbps (peak %.0f)", sum.FleetMbps, sum.MeanMbps, sum.PeakMbps))
}

func (r *runner) cost() {
	header("§5.3 — backend cost: Swiftest fleet vs BTS-APP allocation")
	cat := deploy.SyntheticCatalogue()
	plan, err := deploy.PlanPurchase(cat, 1860, 0.075, deploy.PlanOptions{MinServers: 20})
	if err != nil {
		r.fail("cost plan: %v", err)
		return
	}
	legacy, err := deploy.LegacyBTSAppFleet(cat)
	if err != nil {
		r.fail("cost legacy: %v", err)
		return
	}
	var parts []string
	for _, pu := range plan.Purchases {
		parts = append(parts, fmt.Sprintf("%d × %.0f Mbps", pu.Count, pu.Config.BandwidthMbps))
	}
	sort.Strings(parts)
	row("Swiftest fleet", "20 × 100 Mbps", strings.Join(parts, ", "))
	row("BTS-APP allocation", "50 × 1 Gbps",
		fmt.Sprintf("%d servers, %.0f Mbps", legacy.Servers(), legacy.TotalMbps))
	row("monthly cost ratio", "≈15×",
		fmt.Sprintf("%.1f× ($%.0f vs $%.0f)", legacy.MonthlyCost/plan.MonthlyCost,
			legacy.MonthlyCost, plan.MonthlyCost))
	placements, err := deploy.PlaceServers(plan, nil)
	if err != nil {
		r.fail("cost place: %v", err)
		return
	}
	var placed []string
	for _, p := range placements {
		placed = append(placed, fmt.Sprintf("%s:%d", p.Domain, len(p.Servers)))
	}
	fmt.Printf("placement across IXP domains: %s\n", strings.Join(placed, " "))
}

// sec7 quantifies the §7 design-choice discussion: the UDP engine vs the
// TCP-compatible variant, and static refarming vs dynamic spectrum sharing.
func (r *runner) sec7() {
	header("§7 — design choices")
	model, err := dataset.TechModel(dataset.Tech5G, 2021)
	if err != nil {
		r.fail("sec7: %v", err)
		return
	}
	calm := func(seed int64) *linksim.Link {
		return linksim.MustNew(linksim.Config{
			CapacityMbps: 300, RTT: 30 * time.Millisecond, Fluctuation: 0.005,
		}, seed)
	}
	var udp, tcp float64
	const reps = 10
	for i := int64(0); i < reps; i++ {
		link := calm(i)
		p := core.NewSimProbe(link)
		res, err := core.Run(p, core.Config{Model: model})
		p.Close()
		if err != nil {
			r.fail("sec7 udp: %v", err)
			return
		}
		udp += res.Duration.Seconds()
		rep := (&baseline.TCPSwiftest{Model: model}).Run(calm(i + 1000))
		tcp += rep.Duration.Seconds()
	}
	row("UDP vs TCP-variant mean duration", "UDP chosen for simplicity",
		fmt.Sprintf("%.2f s vs %.2f s", udp/reps, tcp/reps))

	band, _ := spectrum.ByName("B41")
	full := spectrum.Capacity(band.UsableContiguousMHz(), 20, 0.65)
	var lteD, nrD []float64
	for h := 0; h < 24; h++ {
		day := float64(h) / 24
		lteD = append(lteD, full*(0.55-0.35*day))
		nrD = append(nrD, full*(0.15+0.55*day))
	}
	st, dy, err := spectrum.CompareRefarming(
		spectrum.StaticSplit{Band: band, NRFraction: 0.5}, lteD, nrD, 20, 0.65)
	if err != nil {
		r.fail("sec7 dss: %v", err)
		return
	}
	row("served load: static split vs DSS", "both can degrade 4G+5G",
		fmt.Sprintf("%.1f %% vs %.1f %% under a diurnal demand swing",
			100*st.ServedFraction, 100*dy.ServedFraction))
	plan, err := spectrum.PlanRefarming(spectrum.StudyRefarmCandidates(), 250, 0.30)
	if err != nil {
		r.fail("sec7 refarm: %v", err)
		return
	}
	row("optimal refarming (§4 planner)", "spare B3, take wide bands",
		fmt.Sprintf("%v → %.0f MHz NR, %.0f %% load displaced",
			plan.Refarmed, plan.TotalNRMHz, 100*plan.DisplacedLoad))
}

// scenarios sweeps the RAN profile library with the campaign runner: how
// the termination algorithms hold up under the multi-state link dynamics
// (fades, handovers, sleep, congestion) the paper's drive tests observed.
func (r *runner) scenarios() {
	header("scenario library — RAN profile campaign (profiles × algorithms × fault plans)")
	runs := 3
	if r.pairN <= 40 { // -quick
		runs = 1
	}
	rep, err := exper.RunCampaign(context.Background(), exper.CampaignConfig{
		Runs:    runs,
		Seed:    r.seed,
		Workers: r.workers,
	})
	if err != nil {
		r.fail("scenarios: %v", err)
		return
	}
	// Per-algorithm aggregates across the whole sweep.
	type agg struct {
		acc, durMS, dataMB float64
		cells              int
	}
	byAlg := map[string]*agg{}
	for _, s := range rep.Scenarios {
		a := byAlg[s.Algorithm]
		if a == nil {
			a = &agg{}
			byAlg[s.Algorithm] = a
		}
		a.acc += s.MeanAccuracy
		a.durMS += s.MeanDurationMS
		a.dataMB += s.MeanDataMB
		a.cells++
	}
	for _, alg := range rep.Algorithms {
		a := byAlg[alg]
		if a == nil || a.cells == 0 {
			continue
		}
		n := float64(a.cells)
		row(alg+" across scenario sweep", "accuracy under RAN dynamics",
			fmt.Sprintf("%.0f%% accuracy, %.2f s, %.1f MB mean over %d cells",
				100*a.acc/n, a.durMS/n/1e3, a.dataMB/n, a.cells))
	}
	if err := rep.WriteTable(os.Stdout); err != nil {
		r.fail("scenarios table: %v", err)
	}
}

// earlystop traces the learned-termination front: the §5.1 crossing
// baseline versus the earlystop policy at a sweep of stop thresholds.
// Campaign cells seed by algorithm name, so cross-algorithm campaign rows
// run different links; this sweep instead runs every policy on identical
// seeded links against fault-free flooding ground truth — the only
// comparison where accuracy/duration/data deltas measure the policy alone.
func (r *runner) earlystop() {
	header("learned early termination — paired front (crossing vs earlystop thresholds)")
	cfg := earlystop.EvalConfig{
		Runs:       3,
		Seed:       r.seed,
		Thresholds: []float64{0.7, 0.75, 0.85, 0.9},
	}
	if r.pairN <= 40 { // -quick
		cfg.Profiles = []string{"4g-static", "5g-drive", "wifi-cafe"}
		cfg.Runs = 1
		cfg.Thresholds = []float64{0.6}
	}
	rep, err := earlystop.Evaluate(context.Background(), cfg)
	if err != nil {
		r.fail("earlystop: %v", err)
		return
	}
	for _, p := range rep.Points {
		label := p.Policy
		if p.Policy == "earlystop" {
			label = fmt.Sprintf("earlystop @ %.2f", p.Threshold)
		}
		row(label, "TURBOTEST: less is enough",
			fmt.Sprintf("%.1f%% accuracy, %.2f s, %.1f MB, %d/%d early stops",
				100*p.MeanAccuracy, p.MeanDurationMS/1e3, p.MeanDataMB, p.EarlyStops, p.Runs))
	}
}

func (r *runner) fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "FAIL: "+format+"\n", args...)
	r.failed = true
}
