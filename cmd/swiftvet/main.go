// Command swiftvet runs the repository's custom static-analysis suite
// (package internal/lint) over the module. Nine analyzers enforce the
// invariants the compiler cannot see: virtual-time discipline (walltime),
// bandwidth-unit consistency (units), mutex-guarded state (lockedfields),
// cancellable network paths (ctxflow), virtual-time core hygiene (vtcore),
// seeded randomness in deterministic packages (seedflow), map-iteration
// order leaking into digests and encoders (maporder), allocation-free
// annotated hot paths (hotpath), and %w/errors.Is error discipline
// (errwrap).
//
// Usage:
//
//	swiftvet [-analyzers name,name] [-list] [-json] [-fix] [packages...]
//
// Patterns default to ./... . Diagnostics print as
// file:line:col: message [analyzer]; the exit code is 1 when any
// diagnostic fires and 2 on loading failure, making
// `go run ./cmd/swiftvet ./...` a CI gate.
//
// -json emits the diagnostics as a JSON array instead — one object per
// finding with analyzer, file, line, col, message, and the suggested fix
// when the analyzer attached one — for CI annotation pipelines.
//
// -fix applies every suggested fix to the files in place and prints an
// applied/skipped summary. The exit code is 0 when every diagnostic carried
// a fix that applied, 1 while unfixed (or unfixable) diagnostics remain.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/mobilebandwidth/swiftest/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	Analyzer string    `json:"analyzer"`
	File     string    `json:"file"`
	Line     int       `json:"line"`
	Col      int       `json:"col"`
	Message  string    `json:"message"`
	Fix      *lint.Fix `json:"fix,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("swiftvet", flag.ContinueOnError)
	flags.SetOutput(stderr)
	list := flags.Bool("list", false, "list registered analyzers and exit")
	names := flags.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	asJSON := flags.Bool("json", false, "emit diagnostics as a JSON array")
	fix := flags.Bool("fix", false, "apply suggested fixes to the files in place")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*names)
	if err != nil {
		fmt.Fprintf(stderr, "swiftvet: %v\n", err)
		return 2
	}

	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "swiftvet: %v\n", err)
		return 2
	}

	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		ds, err := pkg.RunAnalyzers(analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "swiftvet: %v\n", err)
			return 2
		}
		diags = append(diags, ds...)
	}

	if *fix {
		res, err := lint.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintf(stderr, "swiftvet: applying fixes: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "swiftvet: %d fix(es) applied, %d skipped, %d diagnostic(s) without a fix\n",
			res.Applied, res.Skipped, len(diags)-res.Applied-res.Skipped)
		for _, f := range res.Files {
			fmt.Fprintf(stdout, "rewrote %s\n", f)
		}
		if res.Applied == len(diags) {
			return 0
		}
		return 1
	}

	if *asJSON {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
				Fix:      d.Fix,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "swiftvet: encoding diagnostics: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -analyzers flag: empty means all, otherwise a
// comma-separated subset where every name must be registered and the
// selection must be non-empty.
func selectAnalyzers(names string) ([]*lint.Analyzer, error) {
	if names == "" {
		return lint.All(), nil
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a := lint.Lookup(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-analyzers %q selects nothing", names)
	}
	return out, nil
}
