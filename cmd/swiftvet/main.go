// Command swiftvet runs the repository's custom static-analysis suite
// (package internal/lint) over the module: virtual-time discipline
// (walltime), bandwidth-unit consistency (units), mutex-guarded state
// (lockedfields) and cancellable network paths (ctxflow).
//
// Usage:
//
//	swiftvet [-analyzers name,name] [-list] [packages...]
//
// Patterns default to ./... . Diagnostics print as
// file:line:col: message [analyzer]; the exit code is 1 when any
// diagnostic fires and 2 on loading failure, making
// `go run ./cmd/swiftvet ./...` a CI gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/mobilebandwidth/swiftest/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	flags := flag.NewFlagSet("swiftvet", flag.ContinueOnError)
	flags.SetOutput(stderr)
	list := flags.Bool("list", false, "list registered analyzers and exit")
	names := flags.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *names != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*names, ",") {
			a := lint.Lookup(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "swiftvet: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "swiftvet: %v\n", err)
		return 2
	}

	failed := false
	for _, pkg := range pkgs {
		diags, err := pkg.RunAnalyzers(analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "swiftvet: %v\n", err)
			return 2
		}
		for _, d := range diags {
			failed = true
			fmt.Fprintln(stdout, d)
		}
	}
	if failed {
		return 1
	}
	return 0
}
