package main

import (
	"testing"

	"github.com/mobilebandwidth/swiftest/internal/lint"
)

// TestSelfCheck runs every analyzer over the whole module: the repository
// must stay swiftvet-clean, so a violation (or a rotted allow directive)
// fails the ordinary test suite, not just the dedicated CI step.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("self-check shells out to go list -export")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	analyzers := lint.All()
	if len(analyzers) < 4 {
		t.Fatalf("expected at least 4 registered analyzers, got %d", len(analyzers))
	}
	for _, pkg := range pkgs {
		diags, err := pkg.RunAnalyzers(analyzers)
		if err != nil {
			t.Fatalf("running analyzers on %s: %v", pkg.PkgPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
