package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"github.com/mobilebandwidth/swiftest/internal/lint"
)

// TestSelfCheck runs every analyzer over the whole module: the repository
// must stay swiftvet-clean, so a violation (or a rotted allow directive)
// fails the ordinary test suite, not just the dedicated CI step.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("self-check shells out to go list -export")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	analyzers := lint.All()
	if len(analyzers) < 9 {
		t.Fatalf("expected at least 9 registered analyzers, got %d", len(analyzers))
	}
	for _, pkg := range pkgs {
		diags, err := pkg.RunAnalyzers(analyzers)
		if err != nil {
			t.Fatalf("running analyzers on %s: %v", pkg.PkgPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

// TestUnknownAnalyzerExitsTwo pins the usage contract: a typo in -analyzers
// is a hard usage failure (exit 2), not a silently empty run.
func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "walltime,nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), `unknown analyzer "nope"`) {
		t.Errorf("stderr %q should name the unknown analyzer", stderr.String())
	}
}

// TestEmptySelectionExitsTwo: -analyzers "," resolves to no analyzers at
// all, which would vacuously pass — reject it the same way.
func TestEmptySelectionExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", " , "}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "selects nothing") {
		t.Errorf("stderr %q should explain the empty selection", stderr.String())
	}
}

// TestListNamesAllAnalyzers keeps -list in sync with the registry.
func TestListNamesAllAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	for _, a := range lint.All() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output is missing analyzer %s", a.Name)
		}
	}
}

// TestFixRoundTrip proves the headline -fix contract end to end: a module
// with errwrap violations is rewritten in place, the rewritten source
// compiles, and a second swiftvet pass over it is diagnostic-free.
func TestFixRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a throwaway module with the go tool")
	}
	dir := t.TempDir()
	// The package lives under internal/core so the errwrap suffix matches.
	pkgDir := filepath.Join(dir, "internal", "core")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(dir, "go.mod"), "module tmpmod\n\ngo 1.24\n")
	writeFile(t, filepath.Join(pkgDir, "core.go"), `package core

import (
	"errors"
	"fmt"
)

var errBoom = errors.New("boom")

func Wrap(err error) error {
	return fmt.Errorf("op: %v", err)
}

func IsBoom(err error) bool {
	return err == errBoom
}
`)
	t.Chdir(dir)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("pre-fix exit code = %d, want 1; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-fix", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-fix exit code = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "2 fix(es) applied") {
		t.Errorf("-fix summary %q should report 2 applied fixes", stdout.String())
	}

	fixed, err := os.ReadFile(filepath.Join(pkgDir, "core.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`fmt.Errorf("op: %w", err)`, "errors.Is(err, errBoom)"} {
		if !strings.Contains(string(fixed), want) {
			t.Errorf("fixed source is missing %q:\n%s", want, fixed)
		}
	}

	if out, err := exec.Command("go", "build", "./...").CombinedOutput(); err != nil {
		t.Fatalf("fixed module does not compile: %v\n%s", err, out)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("post-fix exit code = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
}

// TestJSONOutput checks the -json wire format on the same throwaway module.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a throwaway module with the go tool")
	}
	dir := t.TempDir()
	pkgDir := filepath.Join(dir, "internal", "transport")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(dir, "go.mod"), "module tmpmod\n\ngo 1.24\n")
	writeFile(t, filepath.Join(pkgDir, "t.go"), `package transport

import "fmt"

func Wrap(err error) error {
	return fmt.Errorf("op: %v", err)
}
`)
	t.Chdir(dir)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	for _, want := range []string{
		`"analyzer": "errwrap"`,
		`"line": 6`,
		`"message":`,
		`"new_text": "%w"`,
	} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("-json output is missing %s:\n%s", want, stdout.String())
		}
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkSwiftvet times the nine-analyzer pass over the already-loaded
// module — the marginal cost of the suite once go list -export has run.
func BenchmarkSwiftvet(b *testing.B) {
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		b.Fatalf("loading module: %v", err)
	}
	analyzers := lint.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pkg := range pkgs {
			if _, err := pkg.RunAnalyzers(analyzers); err != nil {
				b.Fatal(err)
			}
		}
	}
}
