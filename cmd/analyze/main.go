// Command analyze computes the §3 measurement findings from a JSONL dataset
// produced by cmd/datasetgen (or any source emitting the same record
// schema): per-technology averages and distributions, per-band statistics,
// the diurnal pattern, RSS correlations, WiFi breakdowns, and fitted
// multi-modal bandwidth models.
//
// Usage:
//
//	analyze -i records.jsonl [-report tech|bands|diurnal|rss|wifi|models|all] [-workers 0]
//
// All figure-level reports are computed from one single-pass Study
// aggregation, fanned out across -workers shards and merged.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/mobilebandwidth/swiftest/internal/analysis"
	"github.com/mobilebandwidth/swiftest/internal/dataset"
	"github.com/mobilebandwidth/swiftest/internal/plot"
	"github.com/mobilebandwidth/swiftest/internal/spectrum"
)

func main() {
	in := flag.String("i", "-", "input JSONL file (\"-\" for stdin)")
	report := flag.String("report", "all", "report: tech, bands, diurnal, rss, wifi, models or all")
	seed := flag.Int64("seed", 1, "RNG seed for model fitting")
	workers := flag.Int("workers", 0, "aggregation workers (0 = GOMAXPROCS)")
	modelsOut := flag.String("models-out", "", "directory to write fitted bandwidth models as JSON (for swiftest test -model)")
	flag.Parse()

	if err := run(*in, *report, *seed, *workers, *modelsOut); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

func run(in, report string, seed int64, workers int, modelsOut string) error {
	r := os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	records, err := dataset.ReadJSONL(r)
	if err != nil {
		return err
	}
	if len(records) == 0 {
		return fmt.Errorf("no records in %s", in)
	}
	fmt.Printf("%d records\n", len(records))

	study := analysis.Fanout(records, workers, analysis.NewStudy)

	all := report == "all"
	if all || report == "tech" {
		reportTech(study)
	}
	if all || report == "bands" {
		reportBands(study)
	}
	if all || report == "diurnal" {
		reportDiurnal(study)
	}
	if all || report == "rss" {
		reportRSS(study)
	}
	if all || report == "wifi" {
		reportWiFi(study)
	}
	if all || report == "models" {
		if err := reportModels(records, seed, modelsOut); err != nil {
			return err
		}
	}
	return nil
}

func reportTech(study *analysis.Study) {
	fmt.Println("\n# per-technology averages (Figure 1)")
	avg := study.Tech.Snapshot()
	for _, tech := range []dataset.Tech{dataset.Tech3G, dataset.Tech4G, dataset.Tech5G, dataset.TechWiFi} {
		if n := avg.Count[tech]; n > 0 {
			fmt.Printf("%-5s mean %7.1f Mbps over %d tests\n", tech, avg.Mean[tech], n)
		}
	}
	for _, tech := range []dataset.Tech{dataset.Tech4G, dataset.Tech5G} {
		d := study.Dist.Snapshot(tech)
		if d.Count == 0 {
			continue
		}
		fmt.Printf("%-5s median %6.1f  mean %6.1f  max %7.1f (Figures 4/7)\n",
			tech, d.Median, d.Mean, d.Max)
		fmt.Printf("%v bandwidth CDF (Mbps):\n%s", tech, plot.CDF(d.CDF, 56, 10))
	}
}

func reportBands(study *analysis.Study) {
	fmt.Println("\n# per-band statistics (Figures 5/6 and 8/9)")
	for _, gen := range []spectrum.Generation{spectrum.LTE, spectrum.NR} {
		rows := study.Band.Snapshot(gen)
		chart := plot.BarChart{Unit: "Mbps", Width: 36}
		for _, br := range rows {
			if br.Count == 0 {
				continue
			}
			chart.Rows = append(chart.Rows, plot.BarRow{
				Label: fmt.Sprintf("%v %-4s (%d tests)", gen, br.Band.Name, br.Count),
				Value: br.Mean,
			})
		}
		fmt.Print(chart.Render())
	}
	h, top, name := analysis.HBandShare(study.Band.Snapshot(spectrum.LTE))
	fmt.Printf("LTE H-band share %.1f %%, busiest band %s (%.0f %%)\n", 100*h, name, 100*top)
}

func reportDiurnal(study *analysis.Study) {
	fmt.Println("\n# 5G diurnal pattern (Figure 10)")
	var loads, means []float64
	for _, row := range study.Diurnal.Snapshot(dataset.Tech5G) {
		if row.Tests == 0 {
			continue
		}
		fmt.Printf("%02dh  %6d tests  mean %6.1f Mbps\n", row.Hour, row.Tests, row.Mean)
		loads = append(loads, float64(row.Tests))
		means = append(means, row.Mean)
	}
	fmt.Printf("load by hour      %s\n", plot.Sparkline(loads))
	fmt.Printf("bandwidth by hour %s\n", plot.Sparkline(means))
}

func reportRSS(study *analysis.Study) {
	fmt.Println("\n# RSS level vs SNR and bandwidth (Figures 11/12)")
	rows5 := study.RSS.Snapshot(dataset.Tech5G)
	rows4 := study.RSS.Snapshot(dataset.Tech4G)
	for i := range rows5 {
		fmt.Printf("level %d  SNR %5.1f dB  5G %6.1f Mbps  4G %6.1f Mbps\n",
			rows5[i].Level, rows5[i].MeanSNR, rows5[i].MeanBW, rows4[i].MeanBW)
	}
}

func reportWiFi(study *analysis.Study) {
	fmt.Println("\n# WiFi by standard and radio (Figures 13–15)")
	all := study.WiFi.Snapshot()
	for _, std := range []int{4, 5, 6} {
		if d, ok := all.ByStandard[std]; ok {
			fmt.Printf("WiFi %d  mean %6.1f  median %6.1f  max %7.1f  (%d tests)\n",
				std, d.Mean, d.Median, d.Max, d.Count)
		}
	}
	fmt.Printf("≤200 Mbps broadband plans: %.0f %% overall, %.0f %% among WiFi 6 users\n",
		100*study.WiFi.PlanShareAtOrBelow(200, 0),
		100*study.WiFi.PlanShareAtOrBelow(200, 6))
}

func reportModels(records []dataset.Record, seed int64, modelsOut string) error {
	fmt.Println("\n# fitted multi-modal bandwidth models (Figures 16/18/19, Eq. 1)")
	fits := []struct {
		name   string
		filter analysis.Filter
		hi     float64
	}{
		{"4G", analysis.TechFilter(dataset.Tech4G), 500},
		{"5G", analysis.TechFilter(dataset.Tech5G), 1000},
		{"WiFi5", analysis.WiFiStandardFilter(5), 1000},
	}
	for _, f := range fits {
		res, err := analysis.BandwidthPDF(records, f.filter, f.hi, 5, 4000, seed)
		if err != nil {
			fmt.Printf("%-6s %v\n", f.name, err)
			continue
		}
		fmt.Printf("%-6s %d modes: %v\n", f.name, res.Modes, res.Model)
		if modelsOut != "" {
			data, err := json.MarshalIndent(res.Model, "", "  ")
			if err != nil {
				return fmt.Errorf("encoding %s model: %w", f.name, err)
			}
			path := filepath.Join(modelsOut, strings.ToLower(f.name)+"-model.json")
			if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("       wrote %s\n", path)
		}
	}
	return nil
}
