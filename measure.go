package swiftest

import (
	"github.com/mobilebandwidth/swiftest/internal/analysis"
	"github.com/mobilebandwidth/swiftest/internal/dataset"
	"github.com/mobilebandwidth/swiftest/internal/spectrum"
)

// The measurement-study sub-API: the record schema, the calibrated synthetic
// generator standing in for the paper's 23.6M-test dataset, and the analyses
// that reproduce §3's findings. These are aliases of the internal
// implementations so downstream users get the full types.

// Record is one access-bandwidth test with cross-layer metadata (§2).
type Record = dataset.Record

// ISP identifies one of the four anonymised mobile ISPs of the study.
type ISP = spectrum.ISP

// The four ISPs of §3.1.
const (
	ISP1 = spectrum.ISP1
	ISP2 = spectrum.ISP2
	ISP3 = spectrum.ISP3
	ISP4 = spectrum.ISP4
)

// Band describes a cellular frequency band (Tables 1 and 2).
type Band = spectrum.Band

// LTEBands reproduces Table 1; NRBands reproduces Table 2.
var (
	LTEBands = spectrum.LTEBands
	NRBands  = spectrum.NRBands
)

// DatasetConfig configures a synthetic measurement-record generator.
type DatasetConfig = dataset.Config

// DatasetGenerator streams synthetic measurement records whose marginal
// distributions match the paper's findings.
type DatasetGenerator = dataset.Generator

// NewDatasetGenerator returns a generator for the given year (2020 or 2021)
// and seed.
func NewDatasetGenerator(cfg DatasetConfig) (*DatasetGenerator, error) {
	return dataset.NewGenerator(cfg)
}

// Analysis re-exports: each function reproduces the corresponding figure of
// §3 from a slice of records.
type (
	// TechAverages is Figure 1's per-technology means.
	TechAverages = analysis.TechAverages
	// Distribution summarises a bandwidth distribution (Figures 4, 7, 13–15).
	Distribution = analysis.Distribution
	// BandRow is one band's statistics (Figures 5/6/8/9).
	BandRow = analysis.BandRow
	// DiurnalRow is one hour of Figure 10.
	DiurnalRow = analysis.DiurnalRow
	// RSSRow is one RSS level of Figures 11–12.
	RSSRow = analysis.RSSRow
	// PDFResult is a bandwidth density with a fitted mixture (Figures 16/18/19).
	PDFResult = analysis.PDFResult
)

// Analysis functions (see package analysis for details).
var (
	AverageByTech     = analysis.AverageByTech
	TechDistribution  = analysis.TechDistribution
	ByBand            = analysis.ByBand
	Diurnal           = analysis.Diurnal
	ByRSSLevel        = analysis.ByRSSLevel
	WiFiDistributions = analysis.WiFiDistributions
	BandwidthPDF      = analysis.BandwidthPDF
	TechFilter        = analysis.TechFilter
	ByCityTier        = analysis.ByCityTier
	UrbanRuralRatio   = analysis.UrbanRuralRatio
	CityRange         = analysis.CityRange
)
