package swiftest_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	swiftest "github.com/mobilebandwidth/swiftest"
)

// parseRunRecord validates a JSONL run-record: a schema-tagged header line
// followed by parseable event lines. It returns the header meta and the
// event kinds in order.
func parseRunRecord(t *testing.T, r io.Reader) (map[string]string, []string) {
	t.Helper()
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		t.Fatal("empty run-record")
	}
	var header struct {
		Type   string            `json:"type"`
		Schema string            `json:"schema"`
		Events int               `json:"events"`
		Meta   map[string]string `json:"meta"`
	}
	if err := json.Unmarshal(sc.Bytes(), &header); err != nil {
		t.Fatalf("header does not parse: %v", err)
	}
	if header.Type != "meta" || header.Schema != "swiftest-run-record/v2" {
		t.Fatalf("bad header: %+v", header)
	}
	var kinds []string
	for sc.Scan() {
		var ev struct {
			Type string `json:"type"`
			AtUS int64  `json:"at_us"`
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("event line does not parse: %v (%s)", err, sc.Text())
		}
		if ev.Type != "event" || ev.Kind == "" {
			t.Fatalf("bad event line: %s", sc.Text())
		}
		kinds = append(kinds, ev.Kind)
	}
	if len(kinds) != header.Events {
		t.Fatalf("header says %d events, record has %d", header.Events, len(kinds))
	}
	return header.Meta, kinds
}

func hasKind(kinds []string, want string) bool {
	for _, k := range kinds {
		if k == want {
			return true
		}
	}
	return false
}

// TestEmulatedRunRecordAndMetrics runs one virtual-time test with full
// observability attached and checks the run-record and the engine metrics.
func TestEmulatedRunRecordAndMetrics(t *testing.T) {
	model, err := swiftest.DefaultModel(swiftest.Tech5G)
	if err != nil {
		t.Fatal(err)
	}
	trace := swiftest.NewTrace(0)
	reg := swiftest.NewMetricsRegistry()
	res, err := swiftest.SimulateTestContext(
		context.Background(),
		swiftest.LinkConfig{CapacityMbps: 300, Fluctuation: 0.01, Seed: 7},
		model,
		swiftest.SimulateOptions{SessionOptions: swiftest.SessionOptions{Trace: trace, Metrics: reg}},
	)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	meta, kinds := parseRunRecord(t, &buf)
	if meta["source"] != "sim" || meta["capacity_mbps"] != "300" || meta["seed"] != "7" {
		t.Errorf("meta = %v", meta)
	}
	if kinds[0] != "rate_init" {
		t.Errorf("first event = %q, want rate_init", kinds[0])
	}
	if !hasKind(kinds, "sample") || !hasKind(kinds, "converge_check") {
		t.Errorf("missing core event kinds: %v", kinds)
	}
	if res.Converged && !hasKind(kinds, "converged") {
		t.Errorf("no converged event on a converged test: %v", kinds)
	}
	// The v2 record closes with the estimator family and the BDP regime.
	if !hasKind(kinds, "estimate") || kinds[len(kinds)-1] != "bdp_regime" {
		t.Errorf("v2 tail events missing (estimates + bdp_regime): %v", kinds)
	}

	snap := reg.Snapshot()
	if snap.Counters["swiftest_engine_tests_total"] != 1 {
		t.Errorf("tests counter = %d", snap.Counters["swiftest_engine_tests_total"])
	}
	if res.Converged && snap.Counters["swiftest_engine_tests_converged_total"] != 1 {
		t.Errorf("converged counter = %d", snap.Counters["swiftest_engine_tests_converged_total"])
	}
}

// TestLoopbackRunRecordAndMetrics runs a real UDP test on the loopback with
// a shared registry on both sides, then scrapes the registry over HTTP and
// checks that the documented engine and server series appear in the
// Prometheus text.
func TestLoopbackRunRecordAndMetrics(t *testing.T) {
	reg := swiftest.NewMetricsRegistry()
	srv, err := swiftest.NewServer("127.0.0.1:0", swiftest.ServerOptions{
		UplinkMbps: 60,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	model, err := swiftest.NewModel(
		swiftest.ModelComponent{Weight: 0.8, Mu: 20, Sigma: 3},
		swiftest.ModelComponent{Weight: 0.2, Mu: 50, Sigma: 6},
	)
	if err != nil {
		t.Fatal(err)
	}
	trace := swiftest.NewTrace(0)
	res, err := swiftest.Test(swiftest.TestOptions{
		SessionOptions: swiftest.SessionOptions{Trace: trace, Metrics: reg},
		Servers:        []swiftest.ServerAddr{{Addr: srv.Addr(), UplinkMbps: 60}},
		Model:          model,
		MaxDuration:    4 * time.Second,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BandwidthMbps <= 0 {
		t.Fatal("no bandwidth estimate")
	}

	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	meta, kinds := parseRunRecord(t, &buf)
	if meta["source"] != "udp" || meta["test_id"] == "" || meta["started_unix_ms"] == "" {
		t.Errorf("meta = %v", meta)
	}
	if !hasKind(kinds, "server_add") {
		t.Errorf("no server_add event in a live run-record: %v", kinds)
	}
	if !hasKind(kinds, "sample") {
		t.Errorf("no sample events: %v", kinds)
	}

	// Scrape the shared registry exactly as Prometheus would.
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	for _, name := range []string{
		"swiftest_engine_tests_total",
		"swiftest_engine_bandwidth_mbps_count",
		"swiftest_server_sessions_started_total",
		"swiftest_server_sessions_active",
		"swiftest_server_datagrams_sent_total",
		"swiftest_server_bytes_sent_total",
		"swiftest_server_uplink_mbps",
	} {
		if !strings.Contains(text, "\n"+name+" ") && !strings.HasPrefix(text, name+" ") {
			t.Errorf("metric %s missing from exposition", name)
		}
	}
	// Both sides really aggregated into the one registry.
	snap := reg.Snapshot()
	if snap.Counters["swiftest_engine_tests_total"] != 1 {
		t.Errorf("engine tests = %d", snap.Counters["swiftest_engine_tests_total"])
	}
	if snap.Counters["swiftest_server_sessions_started_total"] == 0 {
		t.Error("server saw no sessions")
	}
	if snap.Counters["swiftest_server_datagrams_sent_total"] == 0 {
		t.Error("server sent no datagrams")
	}
}
