package swiftest_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	swiftest "github.com/mobilebandwidth/swiftest"
)

func TestDefaultModels(t *testing.T) {
	for _, tech := range []swiftest.Tech{swiftest.Tech4G, swiftest.Tech5G, swiftest.TechWiFi} {
		m, err := swiftest.DefaultModel(tech)
		if err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		if m.K() < 2 {
			t.Errorf("%v model should be multi-modal", tech)
		}
	}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := swiftest.NewModel(); err == nil {
		t.Error("empty model accepted")
	}
	m, err := swiftest.NewModel(
		swiftest.ModelComponent{Weight: 1, Mu: 100, Sigma: 10},
	)
	if err != nil || m.K() != 1 {
		t.Fatalf("single-mode model: %v", err)
	}
}

func TestFitModel(t *testing.T) {
	truth, _ := swiftest.NewModel(
		swiftest.ModelComponent{Weight: 0.5, Mu: 100, Sigma: 10},
		swiftest.ModelComponent{Weight: 0.5, Mu: 500, Sigma: 30},
	)
	rng := rand.New(rand.NewSource(9))
	var xs []float64
	for i := 0; i < 2000; i++ {
		xs = append(xs, truth.Sample(rng))
	}
	m, err := swiftest.FitModel(xs, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.K() < 2 {
		t.Errorf("fitted %d modes from bimodal data", m.K())
	}
}

func TestSimulateTest(t *testing.T) {
	model, err := swiftest.DefaultModel(swiftest.Tech5G)
	if err != nil {
		t.Fatal(err)
	}
	res, err := swiftest.SimulateTest(swiftest.LinkConfig{
		CapacityMbps: 280,
		Fluctuation:  0.01,
		Seed:         1,
	}, model)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BandwidthMbps-280)/280 > 0.1 {
		t.Errorf("bandwidth = %.0f, want ≈280", res.BandwidthMbps)
	}
	if !res.Converged || res.Duration > 3*time.Second {
		t.Errorf("converged=%v duration=%v", res.Converged, res.Duration)
	}
}

func TestSimulateTestValidation(t *testing.T) {
	model, _ := swiftest.DefaultModel(swiftest.Tech4G)
	if _, err := swiftest.SimulateTest(swiftest.LinkConfig{}, model); err == nil {
		t.Error("zero-capacity link accepted")
	}
}

func TestBaselinesOnEmulatedLink(t *testing.T) {
	link := swiftest.LinkConfig{CapacityMbps: 150, Fluctuation: 0.01, Seed: 3}
	bts, err := swiftest.RunBTSApp(link)
	if err != nil {
		t.Fatal(err)
	}
	if bts.Duration != 10*time.Second {
		t.Errorf("BTS-APP duration = %v, want 10 s", bts.Duration)
	}
	if math.Abs(bts.BandwidthMbps-150)/150 > 0.15 {
		t.Errorf("BTS-APP result = %.0f, want ≈150", bts.BandwidthMbps)
	}
	fast, err := swiftest.RunFAST(link)
	if err != nil {
		t.Fatal(err)
	}
	fbts, err := swiftest.RunFastBTS(link)
	if err != nil {
		t.Fatal(err)
	}
	if fast.System != "fast" || fbts.System != "fastbts" || bts.System != "bts-app" {
		t.Error("system names wrong")
	}
	// The headline comparison: Swiftest beats all baselines on duration.
	model, _ := swiftest.DefaultModel(swiftest.Tech4G)
	sw, err := swiftest.SimulateTest(link, model)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []swiftest.BaselineReport{bts, fast, fbts} {
		if sw.Duration >= b.Duration {
			t.Errorf("Swiftest (%v) not faster than %s (%v)", sw.Duration, b.System, b.Duration)
		}
	}
	if sw.DataMB >= bts.DataMB {
		t.Errorf("Swiftest data (%.0f MB) not below BTS-APP (%.0f MB)", sw.DataMB, bts.DataMB)
	}
}

func TestEndToEndOverUDP(t *testing.T) {
	srv, err := swiftest.NewServer("127.0.0.1:0", swiftest.ServerOptions{UplinkMbps: 60})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	model, err := swiftest.NewModel(
		swiftest.ModelComponent{Weight: 0.8, Mu: 20, Sigma: 3},
		swiftest.ModelComponent{Weight: 0.2, Mu: 50, Sigma: 6},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := swiftest.Test(swiftest.TestOptions{
		Servers:     []swiftest.ServerAddr{{Addr: srv.Addr(), UplinkMbps: 60}},
		Model:       model,
		MaxDuration: 4 * time.Second,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BandwidthMbps <= 0 {
		t.Fatal("no bandwidth estimate")
	}
	if res.SelectionTime <= 0 {
		t.Error("no selection time recorded")
	}
	if len(res.Samples) < 10 {
		t.Errorf("samples = %d", len(res.Samples))
	}
	t.Logf("end-to-end: %.1f Mbps in %v (+%v selection)", res.BandwidthMbps, res.Duration, res.SelectionTime)
}

func TestTestValidation(t *testing.T) {
	model, _ := swiftest.DefaultModel(swiftest.Tech4G)
	if _, err := swiftest.Test(swiftest.TestOptions{Model: model}); err == nil {
		t.Error("no servers accepted")
	}
	if _, err := swiftest.Test(swiftest.TestOptions{
		Servers: []swiftest.ServerAddr{{Addr: "127.0.0.1:1"}},
	}); err == nil {
		t.Error("missing model accepted")
	}
	if _, err := swiftest.Test(swiftest.TestOptions{
		Servers:     []swiftest.ServerAddr{{Addr: "127.0.0.1:1", UplinkMbps: 100}},
		Model:       model,
		PingTimeout: 100 * time.Millisecond,
	}); err == nil {
		t.Error("unreachable pool accepted")
	}
}

func TestMeasurementSubAPI(t *testing.T) {
	gen, err := swiftest.NewDatasetGenerator(swiftest.DatasetConfig{Year: 2021, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	records := gen.Generate(50000)
	avg := swiftest.AverageByTech(records)
	if avg.Mean[swiftest.Tech4G] <= 0 || avg.Mean[swiftest.TechWiFi] <= 0 {
		t.Error("averages missing")
	}
	if len(swiftest.LTEBands()) != 9 || len(swiftest.NRBands()) != 5 {
		t.Error("band tables wrong")
	}
	d := swiftest.TechDistribution(records, swiftest.Tech4G)
	if d.Count == 0 || d.Median <= 0 {
		t.Error("distribution empty")
	}
}

func TestDeploySubAPI(t *testing.T) {
	plan, err := swiftest.PlanDeployment(swiftest.ServerCatalogue(), 1860, 0.075,
		swiftest.PlanOptions{MinServers: 20})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Servers() != 20 {
		t.Errorf("servers = %d, want 20", plan.Servers())
	}
	placements, err := swiftest.PlaceAtIXPs(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(placements) != len(swiftest.IXPDomains) {
		t.Error("placement domains wrong")
	}
	w := swiftest.DeployWorkload{TestsPerDay: 10000, AvgTestDuration: 1200 * time.Millisecond, AvgBandwidth: 300}
	if w.RequiredMbps() <= 0 {
		t.Error("workload estimate not positive")
	}
}

func TestSaveLoadModel(t *testing.T) {
	model, err := swiftest.DefaultModel(swiftest.Tech4G)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.json"
	if err := swiftest.SaveModel(path, model); err != nil {
		t.Fatal(err)
	}
	loaded, err := swiftest.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.K() != model.K() || loaded.MostProbableMode() != model.MostProbableMode() {
		t.Error("model changed across save/load")
	}
	if _, err := swiftest.LoadModel(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLinkRelayFacade(t *testing.T) {
	srv, err := swiftest.NewServer("127.0.0.1:0", swiftest.ServerOptions{UplinkMbps: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	relay, err := swiftest.NewLinkRelay(swiftest.LinkRelayConfig{
		Target:   srv.Addr(),
		RateMbps: 8,
		Delay:    15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	// Ping through the relay: latency must include the added delay.
	rtt, err := swiftest.Ping(relay.Addr(), 2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rtt < 10*time.Millisecond {
		t.Errorf("RTT through 15 ms relay = %v", rtt)
	}
	model, err := swiftest.NewModel(
		swiftest.ModelComponent{Weight: 0.7, Mu: 6, Sigma: 1},
		swiftest.ModelComponent{Weight: 0.3, Mu: 20, Sigma: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := swiftest.Test(swiftest.TestOptions{
		Servers:     []swiftest.ServerAddr{{Addr: relay.Addr(), UplinkMbps: 100}},
		Model:       model,
		MaxDuration: 3 * time.Second,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BandwidthMbps < 4 || res.BandwidthMbps > 12 {
		t.Errorf("measured %.1f Mbps through an 8 Mbps emulated link", res.BandwidthMbps)
	}
	if res.Jitter <= 0 {
		t.Error("no jitter diagnostic")
	}
}
