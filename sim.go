package swiftest

import (
	"context"
	"strconv"
	"time"

	"github.com/mobilebandwidth/swiftest/internal/baseline"
	"github.com/mobilebandwidth/swiftest/internal/core"
	"github.com/mobilebandwidth/swiftest/internal/emu"
	"github.com/mobilebandwidth/swiftest/internal/estimate"
	"github.com/mobilebandwidth/swiftest/internal/linksim"
	"github.com/mobilebandwidth/swiftest/internal/ranprofile"
)

// LinkConfig describes an emulated mobile access link for virtual-time
// experiments. See the linksim package documentation for the semantics of
// each knob.
type LinkConfig struct {
	// CapacityMbps is the bottleneck capacity of the access link. Required.
	CapacityMbps float64
	// RTT is the base round-trip time; zero selects 40 ms.
	RTT time.Duration
	// Fluctuation is the relative capacity noise (e.g. 0.02 = 2 %).
	Fluctuation float64
	// LossRate is the spurious per-tick loss probability.
	LossRate float64
	// ShapingBurstMB and ShapingMbps, when ShapingMbps > 0, apply ISP-style
	// token-bucket traffic shaping: after ShapingBurstMB of traffic the
	// link clamps to ShapingMbps.
	ShapingBurstMB float64
	ShapingMbps    float64
	// Seed makes the emulation deterministic.
	Seed int64
	// Profile, when non-nil, drives the link through a RAN scenario's
	// state machine seeded from Seed — every runner that accepts a
	// LinkConfig (SimulateTest, RunBTSApp, RunFAST, RunFastBTS,
	// RunTCPSwiftest) then sees the same replayable state chain, so
	// baselines and Swiftest are comparable on identical dynamics.
	// CapacityMbps and RTT are ignored while a profile drives the link.
	// SimulateOptions.Profile, when also set, takes precedence.
	Profile *Profile
}

func (c LinkConfig) toInternal() linksim.Config {
	cfg := linksim.Config{
		CapacityMbps: c.CapacityMbps,
		RTT:          c.RTT,
		Fluctuation:  c.Fluctuation,
		LossRate:     c.LossRate,
	}
	if cfg.RTT <= 0 {
		cfg.RTT = 40 * time.Millisecond
	}
	if c.ShapingMbps > 0 {
		cfg.Shaping = &linksim.Shaper{BurstMB: c.ShapingBurstMB, SustainedMbps: c.ShapingMbps}
	}
	return cfg
}

// newLink builds the emulated link, installing the profile state machine
// when one drives it. profile overrides c.Profile when non-nil.
func (c LinkConfig) newLink(profile *Profile, trace *Trace, metrics *MetricsRegistry) (*linksim.Link, error) {
	cfg := c.toInternal()
	if profile == nil {
		profile = c.Profile
	}
	if profile != nil {
		machine := ranprofile.NewMachine(profile, c.Seed, ranprofile.MachineOptions{
			Trace:   trace,
			Metrics: ranprofile.NewLinkMetrics(metrics),
		})
		cfg.StateHook = machine.Hook()
	}
	return linksim.New(cfg, c.Seed)
}

// SimulateTest runs one Swiftest bandwidth test on an emulated access link
// in virtual time (microseconds of wall clock). It exercises exactly the
// same probing engine as Test.
func SimulateTest(link LinkConfig, model *Model) (Result, error) {
	return SimulateTestContext(context.Background(), link, model, SimulateOptions{})
}

// SimServer describes one emulated test server in a multi-server
// simulation (SimulateOptions.Servers). Servers are consulted
// nearest-first in slice order, mirroring the real transport's RTT-ranked
// pool; Addr labels the server in trace events, UplinkMbps caps the
// probing rate it can source.
type SimServer = core.SimServer

// SimulateOptions attaches observability and fault scenarios to an
// emulated test. Trace events are stamped in virtual time — the same
// run-record schema as a live Test — and Faults inject the plan into the
// emulated pool (fault times are virtual milliseconds since the test
// started; server indexes refer to Servers order).
type SimulateOptions struct {
	// SessionOptions carries the trace, metrics, resilience, and fault
	// knobs shared with the live runner (TestOptions).
	SessionOptions
	// Servers, when non-empty, emulates a multi-server pool sharing the
	// access link: the probing rate is split nearest-first under each
	// server's uplink cap, exactly like the real transport, and mid-test
	// server loss triggers the same failover. Empty emulates one uncapped
	// server.
	Servers []SimServer
	// Profile, when non-nil, drives the emulated link through a RAN
	// scenario's state machine seeded from link.Seed: capacity, RTT, loss
	// and jitter follow the chain's states, and mid-test handovers durably
	// swap the cell. The static LinkConfig capacity/RTT become optional and
	// are ignored while the profile drives the link. State changes and
	// handovers appear in Trace, dwell/handover instruments in Metrics.
	Profile *Profile
	// RegimeHint feeds the BDP-regime classifier back into the engine as a
	// convergence hint, exactly as on the live path. Off by default.
	RegimeHint bool
}

// SimulateTestObserved is SimulateTestContext with a background context.
//
// Deprecated: use SimulateTestContext; the options struct now embeds
// SessionOptions shared with the live runner.
func SimulateTestObserved(link LinkConfig, model *Model, opts SimulateOptions) (Result, error) {
	return SimulateTestContext(context.Background(), link, model, opts)
}

// SimulateTestContext runs one Swiftest test on an emulated link with
// options attached: the emulator reuses the exact instrumentation of the
// live path, so run-records from virtual and real tests are directly
// comparable. The emulator runs in virtual time, so the context matters only
// for aborting long parameter sweeps between samples; cancellation returns
// an error wrapping ErrTestAborted, like a live test.
func SimulateTestContext(ctx context.Context, link LinkConfig, model *Model, opts SimulateOptions) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.Faults.Validate(); err != nil {
		return Result{}, err
	}
	l, err := link.newLink(opts.Profile, opts.Trace, opts.Metrics)
	if err != nil {
		return Result{}, err
	}
	if opts.Trace != nil {
		opts.Trace.SetMeta("source", "sim")
		opts.Trace.SetMeta("capacity_mbps", strconv.FormatFloat(link.CapacityMbps, 'g', -1, 64))
		opts.Trace.SetMeta("seed", strconv.FormatInt(link.Seed, 10))
		if profile := opts.Profile; profile != nil || link.Profile != nil {
			if profile == nil {
				profile = link.Profile
			}
			opts.Trace.SetMeta("profile", profile.Name)
		}
	}
	var probe interface {
		core.Probe
		Close()
	}
	if len(opts.Servers) > 0 || opts.Faults != nil {
		servers := opts.Servers
		if len(servers) == 0 {
			servers = []SimServer{{}} // single uncapped server, fault index 0
		}
		probe, err = core.NewSimPoolProbe(l, core.SimPoolConfig{
			Servers:   servers,
			Faults:    opts.Faults.Injector(),
			LostAfter: opts.LostAfter,
			Trace:     opts.Trace,
		})
		if err != nil {
			return Result{}, err
		}
	} else {
		probe = core.NewSimProbe(l)
	}
	defer probe.Close()
	res, err := core.RunContext(ctx, probe, core.Config{
		Model:      model,
		Trace:      opts.Trace,
		Metrics:    core.NewEngineMetrics(opts.Metrics),
		RegimeHint: opts.RegimeHint,
		Terminate:  opts.Terminate,
	})
	if err != nil {
		return Result{}, err
	}
	return fromCore(res), nil
}

// BaselineReport is the outcome of a baseline BTS test on an emulated link.
type BaselineReport struct {
	System        string
	BandwidthMbps float64
	Duration      time.Duration
	DataMB        float64
	Connections   int
	// Estimates is the protocol-v2 estimator family over the baseline's
	// 50 ms samples — the same struct Result carries, so baselines and
	// Swiftest are comparable estimator by estimator.
	Estimates Estimates
	// Regime classifies the baseline's bandwidth trajectory (RTT-blind:
	// the baselines expose no RTT stream, so only bandwidth-shape regimes
	// such as shaping are detectable).
	Regime BDPRegime
}

func fromBaseline(name string, r baseline.Report) BaselineReport {
	traj := make([]estimate.TrajectoryPoint, len(r.Samples))
	for i, s := range r.Samples {
		traj[i] = estimate.TrajectoryPoint{At: time.Duration(i+1) * 50 * time.Millisecond, Mbps: s}
	}
	return BaselineReport{
		System:        name,
		BandwidthMbps: r.Result,
		Duration:      r.Duration,
		DataMB:        r.DataMB,
		Connections:   r.Flows,
		Estimates:     estimate.Compute(r.Samples, r.Result),
		Regime:        estimate.ClassifyBDP(traj),
	}
}

// RunBTSApp runs the commercial flooding baseline of §2 (10-second
// multi-connection TCP download with Speedtest-style trimming) on an
// emulated link.
func RunBTSApp(link LinkConfig) (BaselineReport, error) {
	l, err := link.newLink(nil, nil, nil)
	if err != nil {
		return BaselineReport{}, err
	}
	return fromBaseline("bts-app", (&baseline.BTSApp{}).Run(l)), nil
}

// RunFAST runs the fast.com-style stability-stop baseline on an emulated
// link.
func RunFAST(link LinkConfig) (BaselineReport, error) {
	l, err := link.newLink(nil, nil, nil)
	if err != nil {
		return BaselineReport{}, err
	}
	return fromBaseline("fast", (&baseline.FAST{}).Run(l)), nil
}

// RunFastBTS runs the FastBTS crucial-interval baseline (NSDI '21) on an
// emulated link.
func RunFastBTS(link LinkConfig) (BaselineReport, error) {
	l, err := link.newLink(nil, nil, nil)
	if err != nil {
		return BaselineReport{}, err
	}
	return fromBaseline("fastbts", (&baseline.FastBTS{}).Run(l)), nil
}

// RunTCPSwiftest runs the §7 TCP-compatible data-driven variant on an
// emulated link: jump-started congestion window, mode escalation, and
// loss-responsive multiplicative decrease that retains TCP fairness.
func RunTCPSwiftest(link LinkConfig, model *Model) (BaselineReport, error) {
	l, err := link.newLink(nil, nil, nil)
	if err != nil {
		return BaselineReport{}, err
	}
	return fromBaseline("swiftest-tcp", (&baseline.TCPSwiftest{Model: model}).Run(l)), nil
}

// LinkRelay is a running real-socket access-link emulator: a UDP relay that
// shapes traffic between a real client and a real server with a bottleneck
// rate, propagation delay, and loss. Point clients at Addr() instead of the
// server.
type LinkRelay = emu.Relay

// LinkRelayConfig configures a LinkRelay; see the emu package for semantics.
type LinkRelayConfig = emu.Config

// NewLinkRelay starts a relay shaping traffic toward cfg.Target, so the real
// UDP transport can be exercised under 4G/5G/WiFi-like conditions.
func NewLinkRelay(cfg LinkRelayConfig) (*LinkRelay, error) {
	return emu.NewRelay(cfg)
}
