package swiftest

import (
	"time"

	"github.com/mobilebandwidth/swiftest/internal/floodhttp"
)

// The flooding sub-API: a deployable probing-by-flooding BTS (§2), the
// architecture of BTS-APP/Speedtest, for real-network comparisons against
// Swiftest.

// FloodServer is a running HTTP flooding test server.
type FloodServer = floodhttp.Server

// NewFloodServer starts an HTTP flooding server on addr (e.g. ":8080").
func NewFloodServer(addr string) (*FloodServer, error) {
	return floodhttp.NewServer(addr)
}

// FloodConfig configures a flooding client test; see floodhttp.ClientConfig.
type FloodConfig = floodhttp.ClientConfig

// FloodReport is the outcome of a flooding test.
type FloodReport = floodhttp.Report

// RunFloodTest floods the configured servers for a fixed duration over
// parallel HTTP connections and estimates the access bandwidth with the
// trimming rule of §2 — the 10-second, hundreds-of-MB methodology that
// Swiftest replaces.
func RunFloodTest(cfg FloodConfig) (FloodReport, error) {
	return floodhttp.RunTest(cfg)
}

// PingFloodServer measures HTTP request latency to a flooding server.
func PingFloodServer(baseURL string, timeout time.Duration) (time.Duration, error) {
	return floodhttp.PingHTTP(baseURL, timeout)
}
