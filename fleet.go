package swiftest

import (
	"context"
	"time"

	"github.com/mobilebandwidth/swiftest/internal/deploy"
	"github.com/mobilebandwidth/swiftest/internal/fleet"
	"github.com/mobilebandwidth/swiftest/internal/loadgen"
)

// The fleet sub-API (§5.2): the dispatch control plane that turns a
// deployment plan into a live, load-shedding server fleet, and the
// virtual-time load generator that exercises it at Figure-26 scale.

// FleetConfig parameterises a fleet dispatcher.
type FleetConfig = fleet.Config

// FleetClient describes one incoming test request to the dispatcher.
type FleetClient = fleet.ClientInfo

// FleetAssignment is a dispatch decision: the admitted lease plus the
// ranked server list that feeds the client's mid-test failover.
type FleetAssignment = fleet.Assignment

// FleetLease names one admitted session for release.
type FleetLease = fleet.LeaseID

// FleetServerStatus is a point-in-time view of one fleet server.
type FleetServerStatus = fleet.ServerStatus

// DeployArtifact is the serialised deployment plan emitted by
// cmd/deployplan -json and consumed by the fleet dispatcher.
type DeployArtifact = deploy.Artifact

// Deployment-artifact functions (see package deploy for details).
var (
	// NewDeployArtifact bundles a workload, plan, and placement.
	NewDeployArtifact = deploy.NewArtifact
	// LoadDeployArtifact reads a cmd/deployplan -json file.
	LoadDeployArtifact = deploy.LoadArtifact
	// ParseDeployArtifact decodes and validates artifact JSON.
	ParseDeployArtifact = deploy.ParseArtifact
)

// LoadgenConfig parameterises a virtual-time load-generation run.
type LoadgenConfig = loadgen.Config

// LoadgenReport summarises a load-generation run.
type LoadgenReport = loadgen.Report

// GenerateLoad drives emulated clients through a fleet dispatcher over a
// multi-server link-emulator pool, entirely in virtual time.
var GenerateLoad = loadgen.Run

// FleetDispatcher is the wall-clock face of the fleet control plane: it
// stamps every internal/fleet call with elapsed time since construction, so
// the deterministic caller-stamped core drives a live deployment unchanged.
type FleetDispatcher struct {
	d       *fleet.Dispatcher
	started time.Time
}

// NewFleetDispatcher builds a live dispatcher for a deployment plan.
// placements may be nil; cfg zero values select the documented defaults.
// With TokenTTL set and no explicit TokenEpochMS, the dispatcher's
// wall-clock birth becomes the epoch token expiry deadlines count from.
func NewFleetDispatcher(plan DeployPlan, placements []Placement, cfg FleetConfig) (*FleetDispatcher, error) {
	stampTokenEpoch(&cfg)
	d, err := fleet.NewDispatcher(plan, placements, cfg)
	if err != nil {
		return nil, err
	}
	return &FleetDispatcher{d: d, started: time.Now()}, nil //lint:allow walltime the live control plane's time base, mirroring transport.Server
}

// NewFleetDispatcherFromArtifact builds a live dispatcher from a
// cmd/deployplan -json artifact.
func NewFleetDispatcherFromArtifact(a *DeployArtifact, cfg FleetConfig) (*FleetDispatcher, error) {
	stampTokenEpoch(&cfg)
	d, err := fleet.NewDispatcherFromArtifact(a, cfg)
	if err != nil {
		return nil, err
	}
	return &FleetDispatcher{d: d, started: time.Now()}, nil //lint:allow walltime the live control plane's time base, mirroring transport.Server
}

// stampTokenEpoch pins the wall-clock instant elapsed time counts from, so
// the deterministic core can mint absolute token expiry deadlines without
// reading a clock itself.
func stampTokenEpoch(cfg *FleetConfig) {
	if cfg.TokenTTL > 0 && cfg.TokenEpochMS == 0 {
		cfg.TokenEpochMS = uint64(time.Now().UnixMilli()) //lint:allow walltime the live control plane's time base, mirroring transport.Server
	}
}

// elapsed is the dispatcher's time base: wall time since construction.
func (f *FleetDispatcher) elapsed() time.Duration {
	return time.Since(f.started) //lint:allow walltime the live control plane's time base, mirroring transport.Server
}

// DispatchContext assigns the client a ranked server list. The returned
// pool is ready for TestOptions.Servers: the admitted primary first, then
// the failover alternates, so the engine's K-silent-windows redistribution
// walks the dispatcher's ranking. Saturation surfaces as ErrFleetSaturated
// (a *SaturatedError with a retry-after hint).
func (f *FleetDispatcher) DispatchContext(ctx context.Context, client FleetClient) (FleetAssignment, []ServerAddr, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return FleetAssignment{}, nil, err
		}
	}
	a, err := f.d.Dispatch(client, f.elapsed())
	if err != nil {
		return FleetAssignment{}, nil, err
	}
	return a, serverPool(a), nil
}

// ReassignContext moves a session whose server died to the best surviving
// alternate of its assignment, returning the refreshed assignment and pool.
func (f *FleetDispatcher) ReassignContext(ctx context.Context, a FleetAssignment) (FleetAssignment, []ServerAddr, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return FleetAssignment{}, nil, err
		}
	}
	moved, err := f.d.Reassign(a, f.elapsed())
	if err != nil {
		return FleetAssignment{}, nil, err
	}
	return moved, serverPool(moved), nil
}

// Release frees an assignment's session lease once the test finishes.
func (f *FleetDispatcher) Release(l FleetLease) { f.d.Registry().Release(l, f.elapsed()) }

// Register claims a fleet slot for a live server (same-domain planned slots
// first), returning its server ID for heartbeating.
func (f *FleetDispatcher) Register(addr, domain string, uplinkMbps float64) (int, error) {
	return f.d.Registry().Register(addr, domain, uplinkMbps, f.elapsed())
}

// Heartbeat records one liveness beat from server id.
func (f *FleetDispatcher) Heartbeat(id int) error { return f.d.Registry().Heartbeat(id, f.elapsed()) }

// Drain marks a server draining: in-flight tests finish, no new ones start.
func (f *FleetDispatcher) Drain(id int) error { return f.d.Registry().Drain(id, f.elapsed()) }

// Advance folds elapsed heartbeat windows: liveness detection, token-bucket
// refill, lease expiry. Call it periodically (a ticker at the heartbeat
// window is ample).
func (f *FleetDispatcher) Advance() { f.d.Registry().Advance(f.elapsed()) }

// Servers reports a snapshot of every fleet server, in ID order.
func (f *FleetDispatcher) Servers() []FleetServerStatus { return f.d.Registry().Servers() }

// Capacity reports the fleet-wide concurrent-session capacity at the
// dispatcher's per-test sizing (DeployPlan.ConcurrentCapacity).
func (f *FleetDispatcher) Capacity() int { return f.d.Capacity() }

func serverPool(a FleetAssignment) []ServerAddr {
	pool := make([]ServerAddr, 0, len(a.Servers))
	for _, s := range a.Servers {
		pool = append(pool, ServerAddr{Addr: s.Addr, UplinkMbps: s.UplinkMbps})
	}
	return pool
}
