package swiftest_test

// Public-API face of the protocol-v2 redesign: negotiated wire versions,
// lease-token authentication, the shared Estimates struct across live,
// emulated, and baseline runners, and the SessionOptions discipline.

import (
	"context"
	"errors"
	"testing"
	"time"

	swiftest "github.com/mobilebandwidth/swiftest"
)

func smallModel(t *testing.T) *swiftest.Model {
	t.Helper()
	m, err := swiftest.NewModel(
		swiftest.ModelComponent{Weight: 0.8, Mu: 20, Sigma: 3},
		swiftest.ModelComponent{Weight: 0.2, Mu: 50, Sigma: 6},
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPublicV2Negotiation: a default (ProtoAuto) live test against a current
// server lands on protocol v2 and reports the full estimator family.
func TestPublicV2Negotiation(t *testing.T) {
	srv, err := swiftest.NewServer("127.0.0.1:0", swiftest.ServerOptions{UplinkMbps: 60})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	res, err := swiftest.Test(swiftest.TestOptions{
		Servers:     []swiftest.ServerAddr{{Addr: srv.Addr(), UplinkMbps: 60}},
		Model:       smallModel(t),
		MaxDuration: 3 * time.Second,
		Seed:        31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ProtocolVersion != 2 {
		t.Errorf("ProtocolVersion = %d, want 2 (ProtoAuto against a v2 server)", res.ProtocolVersion)
	}
	if res.Estimates.CrossingMbps != res.BandwidthMbps {
		t.Errorf("Estimates.CrossingMbps = %g, want BandwidthMbps %g",
			res.Estimates.CrossingMbps, res.BandwidthMbps)
	}
	if res.Estimates.TrimmedMeanMbps <= 0 || res.Estimates.SustainedPeakMbps <= 0 || res.Estimates.P90P80Mbps <= 0 {
		t.Errorf("estimator family incomplete: %+v", res.Estimates)
	}
	if len(res.Trajectory) == 0 {
		t.Error("no trajectory recorded")
	}
}

// TestPublicProtocolPinning: ProtoV1 forces the legacy wire, and the result
// says so.
func TestPublicProtocolPinning(t *testing.T) {
	srv, err := swiftest.NewServer("127.0.0.1:0", swiftest.ServerOptions{UplinkMbps: 60})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	res, err := swiftest.Test(swiftest.TestOptions{
		Servers:     []swiftest.ServerAddr{{Addr: srv.Addr(), UplinkMbps: 60}},
		Model:       smallModel(t),
		MaxDuration: 3 * time.Second,
		Seed:        32,
		Protocol:    swiftest.ProtoV1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ProtocolVersion != 1 {
		t.Errorf("ProtocolVersion = %d, want 1 (pinned)", res.ProtocolVersion)
	}
	if res.BandwidthMbps <= 0 {
		t.Error("pinned-v1 test produced no estimate")
	}
}

// TestPublicAuthFlow: a keyed server refuses an untokened test with
// ErrAuthRejected and admits one holding a minted token — the full
// dispatcher-lease story through the public API.
func TestPublicAuthFlow(t *testing.T) {
	const key = 0x5157494654455354
	srv, err := swiftest.NewServer("127.0.0.1:0", swiftest.ServerOptions{UplinkMbps: 60, AuthKey: key})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	opts := swiftest.TestOptions{
		Servers:     []swiftest.ServerAddr{{Addr: srv.Addr(), UplinkMbps: 60}},
		Model:       smallModel(t),
		MaxDuration: 2 * time.Second,
		Seed:        33,
		Protocol:    swiftest.ProtoV2,
	}
	if _, err := swiftest.Test(opts); !errors.Is(err, swiftest.ErrAuthRejected) {
		t.Errorf("untokened test: err = %v, want ErrAuthRejected", err)
	}

	token := swiftest.MintAuthToken(key, 0, 1)
	parsed, err := swiftest.ParseAuthToken(token.String())
	if err != nil || parsed != token {
		t.Fatalf("token round-trip: %v (%v != %v)", err, parsed, token)
	}
	opts.Token = parsed
	res, err := swiftest.Test(opts)
	if err != nil {
		t.Fatalf("tokened test: %v", err)
	}
	if res.ProtocolVersion != 2 || res.BandwidthMbps <= 0 {
		t.Errorf("tokened test = v%d %.1f Mbps, want v2 with traffic",
			res.ProtocolVersion, res.BandwidthMbps)
	}
}

// TestLiveTestRejectsFaultPlan: fault plans belong to the emulator and to
// fault-injecting servers; a live test with one set is a caller bug.
func TestLiveTestRejectsFaultPlan(t *testing.T) {
	_, err := swiftest.Test(swiftest.TestOptions{
		SessionOptions: swiftest.SessionOptions{Faults: &swiftest.FaultPlan{}},
		Servers:        []swiftest.ServerAddr{{Addr: "127.0.0.1:1", UplinkMbps: 10}},
		Model:          smallModel(t),
	})
	if err == nil {
		t.Fatal("live test accepted a fault plan")
	}
}

// TestSimulateSharesEstimates: the emulated runner reports the same
// estimator family and a regime classification.
func TestSimulateSharesEstimates(t *testing.T) {
	model, err := swiftest.DefaultModel(swiftest.Tech5G)
	if err != nil {
		t.Fatal(err)
	}
	res, err := swiftest.SimulateTestContext(context.Background(),
		swiftest.LinkConfig{CapacityMbps: 300, Fluctuation: 0.01, Seed: 9}, model,
		swiftest.SimulateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimates.CrossingMbps != res.BandwidthMbps {
		t.Errorf("sim Estimates.CrossingMbps = %g, want %g", res.Estimates.CrossingMbps, res.BandwidthMbps)
	}
	if res.ProtocolVersion != 0 {
		t.Errorf("sim ProtocolVersion = %d, want 0 (no wire)", res.ProtocolVersion)
	}

	// A token-bucket-shaped link is the clearest regime: an early burst far
	// above the flat post-clamp plateau must classify as shaping.
	shaped, err := swiftest.SimulateTestContext(context.Background(),
		swiftest.LinkConfig{CapacityMbps: 300, ShapingBurstMB: 4, ShapingMbps: 40, Seed: 9}, model,
		swiftest.SimulateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if shaped.Regime != swiftest.RegimeShaping {
		t.Errorf("shaped-link regime = %v, want shaping (trajectory %v)", shaped.Regime, shaped.Trajectory)
	}
}

// TestBaselinesShareEstimates: baseline reports carry the same Estimates
// struct, so Figure-4-style comparisons can use any estimator.
func TestBaselinesShareEstimates(t *testing.T) {
	link := swiftest.LinkConfig{CapacityMbps: 100, RTT: 30 * time.Millisecond, Seed: 5}
	rep, err := swiftest.RunFastBTS(link)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Estimates.TrimmedMeanMbps <= 0 || rep.Estimates.SustainedPeakMbps <= 0 {
		t.Errorf("baseline estimates incomplete: %+v", rep.Estimates)
	}
	if rep.Estimates.CrossingMbps != rep.BandwidthMbps {
		t.Errorf("baseline crossing = %g, want report result %g",
			rep.Estimates.CrossingMbps, rep.BandwidthMbps)
	}
}

// TestPingServerOptions: the struct-options ping probes a live server with
// defaulted knobs and keeps the deprecated positional forms working.
func TestPingServerOptions(t *testing.T) {
	srv, err := swiftest.NewServer("127.0.0.1:0", swiftest.ServerOptions{UplinkMbps: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rtt, err := swiftest.PingServer(context.Background(), swiftest.PingOptions{Addr: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 {
		t.Errorf("rtt = %v, want > 0", rtt)
	}
	legacy, err := swiftest.Ping(srv.Addr(), 1, time.Second)
	if err != nil || legacy <= 0 {
		t.Errorf("deprecated Ping = (%v, %v), want a latency", legacy, err)
	}
}
