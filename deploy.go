package swiftest

import (
	"github.com/mobilebandwidth/swiftest/internal/deploy"
)

// The deployment-planning sub-API (§5.2): workload estimation, the
// branch-and-bound ILP purchase planner, and IXP-domain placement.

// ServerConfigOption is one purchasable server configuration.
type ServerConfigOption = deploy.ServerConfig

// DeployPlan is a server purchase plan.
type DeployPlan = deploy.Plan

// DeployWorkload describes expected bandwidth-testing activity.
type DeployWorkload = deploy.Workload

// Placement assigns purchased servers to an IXP domain.
type Placement = deploy.Placement

// PlanOptions carries optional planning constraints (geographic coverage).
type PlanOptions = deploy.PlanOptions

// Deployment planning functions (see package deploy for details).
var (
	// PlanDeployment solves the §5.2 ILP with branch-and-bound.
	PlanDeployment = deploy.PlanPurchase
	// PlaceAtIXPs spreads a plan's servers across the eight core-IXP domains.
	PlaceAtIXPs = deploy.PlaceServers
	// ServerCatalogue builds a OneProvider-like configuration catalogue.
	ServerCatalogue = deploy.SyntheticCatalogue
)

// IXPDomains are the eight Internet-exchange domains of Mainland China.
var IXPDomains = deploy.IXPDomains
