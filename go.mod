module github.com/mobilebandwidth/swiftest

go 1.24
