// Baseline comparison: the §5.3 evaluation in miniature.
//
// Runs Swiftest against the three systems the paper compares it with —
// BTS-APP's probing-by-flooding (the commercial baseline and approximate
// ground truth), Netflix's FAST, and FastBTS — on identical emulated access
// links across the three access technologies, and prints the Figure 23–25
// style summary: test time, data usage, and accuracy.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	swiftest "github.com/mobilebandwidth/swiftest"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	techs := []swiftest.Tech{swiftest.Tech4G, swiftest.Tech5G, swiftest.TechWiFi}

	fmt.Println("system     | per-tech mean over 12 links each")
	for _, tech := range techs {
		model, err := swiftest.DefaultModel(tech)
		if err != nil {
			log.Fatal(err)
		}

		type agg struct {
			dur  time.Duration
			data float64
			acc  float64
		}
		sums := map[string]*agg{
			"bts-app": {}, "fast": {}, "fastbts": {}, "swiftest": {},
		}

		const trials = 12
		for i := 0; i < trials; i++ {
			// Draw a client link from the technology's own population model.
			capMbps := math.Max(5, model.Sample(rng))
			link := swiftest.LinkConfig{
				CapacityMbps: capMbps,
				RTT:          30 * time.Millisecond,
				Fluctuation:  0.01,
				Seed:         int64(i*911 + 13),
			}

			truth, err := swiftest.RunBTSApp(link)
			if err != nil {
				log.Fatal(err)
			}
			fast, err := swiftest.RunFAST(link)
			if err != nil {
				log.Fatal(err)
			}
			fbts, err := swiftest.RunFastBTS(link)
			if err != nil {
				log.Fatal(err)
			}
			sw, err := swiftest.SimulateTest(link, model)
			if err != nil {
				log.Fatal(err)
			}

			accuracy := func(result float64) float64 {
				m := math.Max(result, truth.BandwidthMbps)
				if m == 0 {
					return 1
				}
				return 1 - math.Abs(result-truth.BandwidthMbps)/m
			}
			add := func(name string, d time.Duration, data, acc float64) {
				sums[name].dur += d
				sums[name].data += data
				sums[name].acc += acc
			}
			add("bts-app", truth.Duration, truth.DataMB, 1)
			add("fast", fast.Duration, fast.DataMB, accuracy(fast.BandwidthMbps))
			add("fastbts", fbts.Duration, fbts.DataMB, accuracy(fbts.BandwidthMbps))
			add("swiftest", sw.Duration, sw.DataMB, accuracy(sw.BandwidthMbps))
		}

		fmt.Printf("\n%v:\n", tech)
		for _, name := range []string{"bts-app", "fast", "fastbts", "swiftest"} {
			a := sums[name]
			fmt.Printf("  %-9s time %6.2f s   data %7.1f MB   accuracy %.2f\n",
				name,
				(a.dur / trials).Seconds(),
				a.data/trials,
				a.acc/trials)
		}
	}
	fmt.Println("\npaper (§5.3): Swiftest is 2.9–16.5× faster and 3–16.7× lighter than")
	fmt.Println("FAST/FastBTS with 8–12% higher accuracy; BTS-APP floods for a fixed 10 s.")
}
