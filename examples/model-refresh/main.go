// Model refresh: the §5.1 feedback loop that keeps Swiftest's statistical
// prior current.
//
// A deployment's bandwidth model is only useful while it matches the user
// population (the paper finds the multi-modal distributions stable "on a
// moderate time scale", so it refreshes the model periodically from recent
// test results). This example runs the loop end to end: a server feeds every
// reported result into a ModelStore, the population then shifts (an ISP
// upgrades its plans), and the refreshed model moves its modes — so the next
// test's initial probing rate is right again.
package main

import (
	"fmt"
	"log"
	"math/rand"

	swiftest "github.com/mobilebandwidth/swiftest"
)

func main() {
	// Seed the store with the calibrated 5G model.
	seed, err := swiftest.DefaultModel(swiftest.Tech5G)
	if err != nil {
		log.Fatal(err)
	}
	store, err := swiftest.NewModelStore(seed, swiftest.RefreshConfig{
		WindowSize: 5000,
		MinResults: 500,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("seed model    :", store.Model())
	fmt.Printf("initial rate  : %.0f Mbps\n\n", store.Model().MostProbableMode().Rate)

	// A server wired into the store: every client-reported result feeds the
	// refresh window. (swiftest.NewServer(addr, swiftest.ServerOptions{
	// OnResult: store.Report}) does the same against real clients.)
	report := store.Report

	// The population shifts: most users now sit around 500 Mbps with a
	// 900 Mbps premium tier — the old 250 Mbps mode is history.
	shifted, err := swiftest.NewModel(
		swiftest.ModelComponent{Weight: 0.7, Mu: 500, Sigma: 45},
		swiftest.ModelComponent{Weight: 0.3, Mu: 900, Sigma: 70},
	)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4000; i++ {
		report(shifted.Sample(rng))
	}
	fmt.Printf("window holds  : %d recent results\n", store.Results())

	// Periodic refresh (a deployment runs store.RunRefresher in a goroutine;
	// here one explicit refit shows the effect).
	refreshed, refitted, err := store.Refresh()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("refit ran     :", refitted)
	fmt.Println("refreshed     :", refreshed)
	fmt.Printf("new init rate : %.0f Mbps (population moved 250 → ≈500)\n\n",
		refreshed.MostProbableMode().Rate)

	// The refreshed model immediately drives better tests: a client on a
	// 520 Mbps link starts at the right mode and converges without
	// escalating through stale modes.
	res, err := swiftest.SimulateTest(swiftest.LinkConfig{
		CapacityMbps: 520,
		Fluctuation:  0.01,
		Seed:         3,
	}, refreshed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test with refreshed model: %.0f Mbps in %v (%d escalations)\n",
		res.BandwidthMbps, res.Duration, res.RateChanges)
}
