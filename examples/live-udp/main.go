// Live UDP: a complete Swiftest test over real sockets.
//
// Starts three in-process test servers on loopback (a miniature of the
// 20-server budget fleet of §5.2), then runs a full client test: PING-based
// server selection, the data-driven UDP probing of §5.1, convergence, and
// result reporting back to the servers for model refresh.
//
//lint:allow walltime live example over real sockets
package main

import (
	"fmt"
	"log"
	"time"

	swiftest "github.com/mobilebandwidth/swiftest"
)

func main() {
	// A small geo-distributed fleet: each server has a modest 15 Mbps
	// uplink; the client aggregates across them when the probing rate
	// exceeds one server's capacity, exactly like production Swiftest.
	// (Rates are kept small so the example behaves on any machine.)
	results := make(chan float64, 8)
	var pool []swiftest.ServerAddr
	for i := 0; i < 3; i++ {
		srv, err := swiftest.NewServer("127.0.0.1:0", swiftest.ServerOptions{
			UplinkMbps: 15,
			OnResult:   func(mbps float64) { results <- mbps },
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		pool = append(pool, swiftest.ServerAddr{Addr: srv.Addr(), UplinkMbps: 15})
		fmt.Printf("server %d listening on %s\n", i+1, srv.Addr())
	}

	// A bandwidth model for this loopback "technology": modes at 12 and
	// 35 Mbps. (In production this comes from FitModel over recent results.)
	model, err := swiftest.NewModel(
		swiftest.ModelComponent{Weight: 0.6, Mu: 12, Sigma: 2},
		swiftest.ModelComponent{Weight: 0.4, Mu: 35, Sigma: 5},
	)
	if err != nil {
		log.Fatal(err)
	}

	// On fast multi-core machines the test converges in ≈1 s; on a loaded
	// single-core box sample jitter can exceed the 3 % criterion, in which
	// case the test rides to this deadline and reports the trailing window.
	res, err := swiftest.Test(swiftest.TestOptions{
		Servers:     pool,
		Model:       model,
		MaxDuration: 2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nbandwidth     : %.1f Mbps\n", res.BandwidthMbps)
	fmt.Printf("probing time  : %v\n", res.Duration.Round(time.Millisecond))
	fmt.Printf("selection time: %v (PING latency ranking)\n", res.SelectionTime.Round(time.Millisecond))
	fmt.Printf("data consumed : %.1f MB in %d samples\n", res.DataMB, len(res.Samples))
	fmt.Printf("escalations   : %d (started at %.0f Mbps)\n", res.RateChanges, res.InitialRateMbps)

	// The servers received the result via the Fin message (§5.1's feed for
	// periodic model refresh).
	select {
	case reported := <-results:
		fmt.Printf("server-side report: %.1f Mbps\n", reported)
	case <-time.After(2 * time.Second):
		fmt.Println("no server-side report received")
	}
}
