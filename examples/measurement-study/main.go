// Measurement study: §3 of the paper in miniature.
//
// Generates a synthetic measurement corpus (the calibrated stand-in for the
// paper's 23.6M crowdsourced tests) for both study years, then runs the
// analysis pipeline to recover the paper's headline findings: the
// year-over-year bandwidth evolution, the 4G skew, the refarming damage to
// 5G bands N1/N28, the RSS level-5 anomaly, and the WiFi plan ceiling.
package main

import (
	"fmt"
	"log"

	swiftest "github.com/mobilebandwidth/swiftest"
)

func main() {
	const n = 300000
	corpora := map[int][]swiftest.Record{}
	for _, year := range []int{2020, 2021} {
		gen, err := swiftest.NewDatasetGenerator(swiftest.DatasetConfig{Year: year, Seed: int64(year)})
		if err != nil {
			log.Fatal(err)
		}
		corpora[year] = gen.Generate(n)
	}

	// Figure 1: the surprising year-over-year decline.
	fmt.Println("# Figure 1 — average access bandwidth (Mbps)")
	for _, year := range []int{2020, 2021} {
		avg := swiftest.AverageByTech(corpora[year])
		fmt.Printf("%d:  4G %5.1f   5G %6.1f   WiFi %6.1f\n", year,
			avg.Mean[swiftest.Tech4G], avg.Mean[swiftest.Tech5G], avg.Mean[swiftest.TechWiFi])
	}
	fmt.Println("paper: 4G 68→53 (refarming), 5G 343→305, WiFi ~flat — despite new deployments")

	r21 := corpora[2021]

	// Figure 4: the 4G skew.
	d4 := swiftest.TechDistribution(r21, swiftest.Tech4G)
	fmt.Printf("\n# Figure 4 — 4G distribution: median %.0f, mean %.0f, max %.0f\n",
		d4.Median, d4.Mean, d4.Max)
	fmt.Printf("%.1f%% of tests below 10 Mbps; %.1f%% above 300 Mbps (LTE-Advanced, mean %.0f)\n",
		100*d4.FractionBelow(10), 100*d4.FractionAbove(300), d4.MeanAbove(300))

	// Figures 8/9: refarming damage.
	fmt.Println("\n# Figures 8/9 — 5G bands: thin refarmed spectrum ⇒ low bandwidth")
	for _, row := range swiftest.ByBand(r21, swiftest.NRBands()[0].Gen) {
		if row.Count == 0 {
			continue
		}
		kind := "dedicated"
		if row.Band.IsRefarmed() {
			kind = fmt.Sprintf("refarmed from %s (%.0f MHz contiguous)",
				row.Band.RefarmedFrom, row.Band.ContiguousRefarmedMHz)
		}
		fmt.Printf("%-4s mean %5.1f Mbps  %7d tests  %s\n", row.Band.Name, row.Mean, row.Count, kind)
	}

	// Figure 12: the RSS anomaly.
	fmt.Println("\n# Figure 12 — 5G bandwidth by RSS level (note the level-5 drop)")
	for _, row := range swiftest.ByRSSLevel(r21, swiftest.Tech5G) {
		bar := ""
		for i := 0; i < int(row.MeanBW/15); i++ {
			bar += "█"
		}
		fmt.Printf("level %d  %6.0f Mbps  %s\n", row.Level, row.MeanBW, bar)
	}
	fmt.Println("paper: excellent-RSS tests cluster in crowded urban areas (interference, handover)")

	// Figure 16: the multi-modal WiFi distribution and its plan ceiling.
	res, err := swiftest.BandwidthPDF(r21, func(r swiftest.Record) bool {
		return r.Tech == swiftest.TechWiFi && r.WiFiStandard == 5
	}, 1000, 5, 4000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n# Figure 16 — WiFi 5 bandwidth is multi-modal: %v\n", res.Model)
	fmt.Println("paper: the modes sit at broadband-plan rates — the wired Internet is the ceiling")
}
