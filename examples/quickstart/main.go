// Quickstart: run one Swiftest bandwidth test on an emulated 5G access link.
//
// This is the smallest end-to-end use of the library: pick the calibrated 5G
// bandwidth model, describe the access link under test, and run the
// data-driven probing engine. The whole test completes in microseconds of
// wall-clock time because the link is emulated in virtual time — the probing
// logic is identical to the real UDP transport's (see examples/live-udp).
package main

import (
	"fmt"
	"log"
	"time"

	swiftest "github.com/mobilebandwidth/swiftest"
)

func main() {
	// The statistical prior of §5.1: the multi-modal Gaussian bandwidth
	// distribution of 5G access, calibrated from the measurement study.
	model, err := swiftest.DefaultModel(swiftest.Tech5G)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("5G bandwidth model:", model)
	fmt.Printf("initial probing rate (most probable mode): %.0f Mbps\n\n",
		model.MostProbableMode().Rate)

	// A realistic 5G access link: 350 Mbps bottleneck, 25 ms RTT, 1 % noise.
	link := swiftest.LinkConfig{
		CapacityMbps: 350,
		RTT:          25 * time.Millisecond,
		Fluctuation:  0.01,
		Seed:         42,
	}

	res, err := swiftest.SimulateTest(link, model)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("measured bandwidth : %.1f Mbps (true capacity 350)\n", res.BandwidthMbps)
	fmt.Printf("test duration      : %v (BTS-APP would take a fixed 10 s)\n", res.Duration)
	fmt.Printf("data consumed      : %.1f MB\n", res.DataMB)
	fmt.Printf("rate escalations   : %d (initial %.0f Mbps)\n", res.RateChanges, res.InitialRateMbps)
	fmt.Printf("converged          : %v (last 10 samples within 3%%)\n", res.Converged)
}
