// Deployment planner: the §5.2 workflow.
//
// Estimates the server capacity a Swiftest deployment needs from its
// expected workload, solves the integer-linear purchase problem with the
// branch-and-bound planner, places the fleet across the eight core-IXP
// domains, and contrasts the monthly cost with a legacy BTS-APP-style
// allocation — the ~15× backend saving of §5.3.
package main

import (
	"fmt"
	"log"
	"time"

	swiftest "github.com/mobilebandwidth/swiftest"
)

func main() {
	// Step 1 — estimate the workload from recent testing activity (§5.2:
	// "jointly considering recent user scale and their access bandwidths").
	workload := swiftest.DeployWorkload{
		TestsPerDay:     10000, // the evaluation's ~10K tests/day
		AvgTestDuration: 1200 * time.Millisecond,
		AvgBandwidth:    300, // 5G-era user base
		PeakFactor:      3,
	}
	required := workload.RequiredMbps()
	fmt.Printf("estimated egress requirement: %.0f Mbps\n\n", required)

	// Step 2 — solve the purchase ILP over a OneProvider-like catalogue,
	// with a 20-server floor so the fleet can cover all IXP domains.
	catalogue := swiftest.ServerCatalogue()
	plan, err := swiftest.PlanDeployment(catalogue, 1860, 0.075, swiftest.PlanOptions{MinServers: 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal plan: $%.2f/month for %.0f Mbps across %d servers\n",
		plan.MonthlyCost, plan.TotalMbps, plan.Servers())
	for _, pu := range plan.Purchases {
		fmt.Printf("  %2d × %.0f Mbps @ $%.2f/mo\n",
			pu.Count, pu.Config.BandwidthMbps, pu.Config.PricePerMonth)
	}

	// Step 3 — place the servers near the core IXPs, evenly (§5.2).
	placements, err := swiftest.PlaceAtIXPs(plan, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplacement:")
	for _, p := range placements {
		fmt.Printf("  %-10s %d servers (%.0f Mbps)\n", p.Domain, len(p.Servers), p.Mbps)
	}

	// Step 4 — the §5.3 cost headline.
	var gigPrice float64
	for _, c := range catalogue {
		if c.BandwidthMbps == 1000 {
			gigPrice = c.PricePerMonth
		}
	}
	legacyCost := 50 * gigPrice
	fmt.Printf("\nBTS-APP-style allocation (50 × 1 Gbps): $%.2f/month\n", legacyCost)
	fmt.Printf("Swiftest's budget fleet is %.1f× cheaper (paper: ≈15×)\n",
		legacyCost/plan.MonthlyCost)
}
