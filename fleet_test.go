package swiftest_test

// End-to-end fleet test over real loopback UDP: a deployment artifact boots
// the live dispatcher, real test servers register into the planned slots,
// DispatchContext hands a client the ranked pool, and a full bandwidth test
// runs against the admitted primary — with the fleet visible on /metrics.

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	swiftest "github.com/mobilebandwidth/swiftest"
)

func buildFleetArtifact(t *testing.T) *swiftest.DeployArtifact {
	t.Helper()
	plan, err := swiftest.PlanDeployment(swiftest.ServerCatalogue(), 500, 0.075,
		swiftest.PlanOptions{MinServers: 3})
	if err != nil {
		t.Fatal(err)
	}
	placements, err := swiftest.PlaceAtIXPs(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := swiftest.DeployWorkload{
		TestsPerDay:     20000,
		AvgTestDuration: 1200 * time.Millisecond,
		AvgBandwidth:    40,
		PeakFactor:      2,
	}
	art := swiftest.NewDeployArtifact(w, plan, placements)
	if err := art.Validate(); err != nil {
		t.Fatal(err)
	}
	return art
}

// TestFleetDispatchEndToEnd drives artifact -> dispatcher -> registration ->
// DispatchContext -> real UDP test -> release, scraping the fleet metrics at
// the end.
func TestFleetDispatchEndToEnd(t *testing.T) {
	art := buildFleetArtifact(t)
	metrics := swiftest.NewMetricsRegistry()
	d, err := swiftest.NewFleetDispatcherFromArtifact(art, swiftest.FleetConfig{
		PerTestMbps: 5,
		Metrics:     metrics,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Three real UDP servers register into the planned slots.
	domains := []string{"Beijing", "Shanghai", "Guangzhou"}
	for i := 0; i < 3; i++ {
		srv, err := swiftest.NewServer("127.0.0.1:0", swiftest.ServerOptions{UplinkMbps: 50})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		id, err := d.Register(srv.Addr(), domains[i], 50)
		if err != nil {
			t.Fatalf("Register server %d: %v", i, err)
		}
		if err := d.Heartbeat(id); err != nil {
			t.Fatalf("Heartbeat %d: %v", id, err)
		}
	}
	live := 0
	for _, s := range d.Servers() {
		if s.State.String() == "live" {
			live++
		}
	}
	if live != 3 {
		t.Fatalf("%d live servers after registration, want 3", live)
	}

	a, pool, err := d.DispatchContext(context.Background(), swiftest.FleetClient{Key: 7, Domain: "Beijing"})
	if err != nil {
		t.Fatalf("DispatchContext: %v", err)
	}
	if len(pool) == 0 {
		t.Fatal("empty dispatch pool")
	}

	model, err := swiftest.DefaultModel(swiftest.Tech4G)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	res, err := swiftest.TestContext(ctx, swiftest.TestOptions{
		Servers:     pool,
		Model:       model,
		MaxDuration: 1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("TestContext against dispatched pool: %v", err)
	}
	if res.BandwidthMbps <= 0 {
		t.Errorf("dispatched test measured %.1f Mbps, want > 0", res.BandwidthMbps)
	}
	d.Release(a.Lease)

	// The fleet series must be visible on a real /metrics scrape.
	ts := httptest.NewServer(metrics.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, name := range []string{
		"swiftest_fleet_servers_live 3",
		"swiftest_fleet_servers_draining 0",
		"swiftest_fleet_servers_dead 0",
		"swiftest_fleet_assignments_total 1",
		"swiftest_fleet_rejected_total 0",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metrics exposition missing %q", name)
		}
	}
}

// TestFleetDispatchContextCancelled: a cancelled context short-circuits
// before touching the registry.
func TestFleetDispatchContextCancelled(t *testing.T) {
	art := buildFleetArtifact(t)
	d, err := swiftest.NewFleetDispatcherFromArtifact(art, swiftest.FleetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := d.DispatchContext(ctx, swiftest.FleetClient{Key: 1}); err != context.Canceled {
		t.Errorf("DispatchContext on cancelled ctx = %v, want context.Canceled", err)
	}
}
