// Emitter for BENCH_scenarios.json: a machine-readable record of the
// scenario campaign runner's virtual-time throughput — how fast the RAN
// profile sweep (profiles × algorithms × fault plans, each run against
// flooding ground truth) turns over. Gated on BENCH_SCENARIOS_OUT so
// regular `go test ./...` runs never pay for it:
//
//	BENCH_SCENARIOS_OUT=BENCH_scenarios.json go test -run TestEmitBenchScenarios .
package swiftest_test

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/mobilebandwidth/swiftest/internal/exper"
	"github.com/mobilebandwidth/swiftest/internal/ranprofile"
)

type benchScenariosReport struct {
	Schema string `json:"schema"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	Note   string `json:"note"`

	// The sweep shape of the measured campaign.
	Profiles   int `json:"profiles"`
	Algorithms int `json:"algorithms"`
	FaultPlans int `json:"fault_plans"`
	Cells      int `json:"cells"`
	// Every cell run also replays a flooding ground-truth test, so the
	// emulated test count is 2 × cells × runs.
	EmulatedTests int `json:"emulated_tests"`

	CampaignWallSeconds float64 `json:"campaign_wall_seconds"`
	CellsPerSec         float64 `json:"cells_per_sec"`
	ProfilesPerSec      float64 `json:"profiles_per_sec"`
	TestsPerSec         float64 `json:"tests_per_sec"`
}

// TestEmitBenchScenarios measures campaign throughput over the full profile
// library and writes BENCH_scenarios.json.
func TestEmitBenchScenarios(t *testing.T) {
	out := os.Getenv("BENCH_SCENARIOS_OUT")
	if out == "" {
		t.Skip("set BENCH_SCENARIOS_OUT=<path> to emit the benchmark report")
	}

	cfg := exper.CampaignConfig{
		Runs:    1,
		Seed:    7,
		Workers: runtime.NumCPU(),
	}
	var rep *exper.CampaignReport
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			rep, err = exper.RunCampaign(context.Background(), cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	wallSec := res.T.Seconds() / float64(res.N)
	cells := len(rep.Scenarios)
	tests := 2 * cells * rep.Runs

	report := benchScenariosReport{
		Schema: "swiftest-bench-scenarios/v1",
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Note: "full RAN profile library x (swiftest, fastbts) x builtin fault " +
			"plans, one seeded run per cell, each against flooding ground truth",
		Profiles:            len(rep.Profiles),
		Algorithms:          len(rep.Algorithms),
		FaultPlans:          len(rep.FaultPlans),
		Cells:               cells,
		EmulatedTests:       tests,
		CampaignWallSeconds: wallSec,
		CellsPerSec:         float64(cells) / wallSec,
		ProfilesPerSec:      float64(len(rep.Profiles)) / wallSec,
		TestsPerSec:         float64(tests) / wallSec,
	}

	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("campaign: %d cells in %.2f s (%.1f cells/s, %.1f profiles/s)",
		cells, wallSec, report.CellsPerSec, report.ProfilesPerSec)
}

// BenchmarkCampaign measures one small campaign sweep per iteration — the
// CI bench smoke's guard that the campaign runner stays on the fast path.
func BenchmarkCampaign(b *testing.B) {
	cfg := exper.CampaignConfig{
		Profiles:   []string{"4g-static", "wifi-cafe"},
		Algorithms: []string{"fastbts"},
		FaultPlans: []exper.NamedFaultPlan{{Name: "none"}},
		Runs:       1,
		Seed:       3,
		Workers:    runtime.NumCPU(),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exper.RunCampaign(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileMachine measures the per-tick cost of the RAN state
// machine — the hook the link emulator calls every 10 ms of virtual time.
func BenchmarkProfileMachine(b *testing.B) {
	p, err := ranprofile.Get("5g-drive")
	if err != nil {
		b.Fatal(err)
	}
	m := ranprofile.NewMachine(p, 5, ranprofile.MachineOptions{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.At(time.Duration(i) * 10 * time.Millisecond)
	}
}
