// Emitter for BENCH_dataset.json: a machine-readable before/after record of
// the dataset-generation and analysis-aggregation performance work. Gated on
// BENCH_DATASET_OUT so regular `go test ./...` runs never pay for it:
//
//	BENCH_DATASET_OUT=BENCH_dataset.json go test -run TestEmitBenchDataset .
//
// Baseline figures were measured on this repository at commit 853d8d7 (the
// map-and-sort generator and per-call map aggregations) on the same container
// class; current figures are measured live by this test via testing.Benchmark.
package swiftest_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"github.com/mobilebandwidth/swiftest/internal/analysis"
	"github.com/mobilebandwidth/swiftest/internal/dataset"
	"github.com/mobilebandwidth/swiftest/internal/spectrum"
)

const benchDatasetRecords = 200_000 // all baselines below are per-200k-record pass

// benchBaseline853d8d7 holds pre-optimisation timings at commit 853d8d7.
var benchBaseline853d8d7 = struct {
	genNsPerRecord float64
	analysisMs     map[string]float64
}{
	genNsPerRecord: 357.1,
	analysisMs: map[string]float64{
		"AverageByTech":    3.757,
		"ByAndroidVersion": 7.010,
		"ByISP":            6.980,
		"ByBand_LTE":       18.121,
		"Diurnal_4G":       1.798,
	},
}

type benchEntry struct {
	BaselineMs float64 `json:"baseline_ms"`
	CurrentMs  float64 `json:"current_ms"`
	Speedup    float64 `json:"speedup"`
}

type benchReport struct {
	Schema         string  `json:"schema"`
	BaselineCommit string  `json:"baseline_commit"`
	Records        int     `json:"records_per_pass"`
	GOOS           string  `json:"goos"`
	GOARCH         string  `json:"goarch"`
	CPUs           int     `json:"cpus"`
	Note           string  `json:"note"`
	GenBaselineNs  float64 `json:"generation_baseline_ns_per_record"`
	GenCurrentNs   float64 `json:"generation_current_ns_per_record"`
	GenSpeedup     float64 `json:"generation_speedup_single_thread"`
	// GenParallelNs maps worker count to ns/record through GenerateParallel;
	// on a multi-core box these divide by core count, on a 1-CPU container
	// they only show the sharding overhead is small.
	GenParallelNs map[string]float64    `json:"generation_parallel_ns_per_record"`
	Analysis      map[string]benchEntry `json:"analysis_per_200k"`
}

// TestEmitBenchDataset measures current generation/analysis throughput and
// writes BENCH_dataset.json next to the baselines captured before this work.
func TestEmitBenchDataset(t *testing.T) {
	out := os.Getenv("BENCH_DATASET_OUT")
	if out == "" {
		t.Skip("set BENCH_DATASET_OUT=<path> to emit the benchmark report")
	}

	gen := dataset.MustNewGenerator(dataset.Config{Year: 2021, Seed: 1})
	recs := gen.Generate(benchDatasetRecords)

	msPerOp := func(f func()) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f()
			}
		})
		return float64(r.NsPerOp()) / 1e6
	}

	genNs := msPerOp(func() { gen.Generate(benchDatasetRecords) }) * 1e6 / benchDatasetRecords
	parallelNs := map[string]float64{}
	for _, w := range []int{1, 2, 4} {
		ns := msPerOp(func() { gen.GenerateParallel(benchDatasetRecords, w) }) * 1e6 / benchDatasetRecords
		parallelNs[workersKey(w)] = round3(ns)
	}

	analysisMs := map[string]float64{
		"AverageByTech":    msPerOp(func() { analysis.AverageByTech(recs) }),
		"ByAndroidVersion": msPerOp(func() { analysis.ByAndroidVersion(recs) }),
		"ByISP":            msPerOp(func() { analysis.ByISP(recs) }),
		"ByBand_LTE":       msPerOp(func() { analysis.ByBand(recs, spectrum.LTE) }),
		"Diurnal_4G":       msPerOp(func() { analysis.Diurnal(recs, dataset.Tech4G) }),
	}

	rep := benchReport{
		Schema:         "swiftest-bench-dataset/v1",
		BaselineCommit: "853d8d7",
		Records:        benchDatasetRecords,
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		CPUs:           runtime.NumCPU(),
		Note: "baseline and current measured on the same container class; " +
			"parallel speedups scale with cores and are overhead-only on a 1-CPU box",
		GenBaselineNs: benchBaseline853d8d7.genNsPerRecord,
		GenCurrentNs:  round3(genNs),
		GenSpeedup:    round3(benchBaseline853d8d7.genNsPerRecord / genNs),
		GenParallelNs: parallelNs,
		Analysis:      map[string]benchEntry{},
	}
	for name, base := range benchBaseline853d8d7.analysisMs {
		cur := analysisMs[name]
		rep.Analysis[name] = benchEntry{
			BaselineMs: base,
			CurrentMs:  round3(cur),
			Speedup:    round3(base / cur),
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("write %s: %v", out, err)
	}
	t.Logf("wrote %s: generation %.1f ns/rec (%.2fx), ByBand %.2fx", out,
		genNs, benchBaseline853d8d7.genNsPerRecord/genNs,
		benchBaseline853d8d7.analysisMs["ByBand_LTE"]/analysisMs["ByBand_LTE"])
}

func workersKey(w int) string { return "workers=" + string(rune('0'+w)) }

func round3(x float64) float64 {
	return float64(int64(x*1000+0.5)) / 1000
}
