// Package swiftest is the public API of this repository: a production-style
// implementation of the Swiftest ultra-fast, ultra-light bandwidth testing
// service from "Mobile Access Bandwidth in Practice: Measurement, Analysis,
// and Implications" (SIGCOMM 2022), together with the substrates the paper
// builds on — the flooding baseline it replaces, the FAST/FastBTS
// comparators, a virtual-time access-link emulator, the crowdsourced
// measurement-study pipeline of §3, and the cost-effective server deployment
// planner of §5.2.
//
// # Running a real bandwidth test
//
// Start a test server (or several) and run a client test against them:
//
//	srv, _ := swiftest.NewServer("0.0.0.0:7007", swiftest.ServerOptions{UplinkMbps: 100})
//	defer srv.Close()
//
//	res, err := swiftest.Test(swiftest.TestOptions{
//		Servers: []swiftest.ServerAddr{{Addr: "203.0.113.7:7007", UplinkMbps: 100}},
//		Model:   swiftest.DefaultModel(swiftest.Tech5G),
//	})
//
// The test transport is the paper's UDP probing protocol; the probing logic
// is the data-driven engine of §5.1: the initial rate is the most probable
// mode of the technology's bandwidth model, the rate escalates through
// larger modes while the access link is unsaturated, and the test stops as
// soon as ten consecutive 50 ms samples agree within 3 %.
//
// # Emulation and experiments
//
// The same engine runs on a virtual-time link emulator, which is how the
// repository regenerates every figure of the paper quickly and
// deterministically; see SimulateTest, the baselines (RunBTSApp, RunFAST,
// RunFastBTS), and the measurement/deployment sub-APIs in this package.
package swiftest

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"strconv"
	"time"

	"github.com/mobilebandwidth/swiftest/internal/core"
	"github.com/mobilebandwidth/swiftest/internal/dataset"
	"github.com/mobilebandwidth/swiftest/internal/estimate"
	"github.com/mobilebandwidth/swiftest/internal/faults"
	"github.com/mobilebandwidth/swiftest/internal/gmm"
	"github.com/mobilebandwidth/swiftest/internal/obs"
	"github.com/mobilebandwidth/swiftest/internal/transport"
	"github.com/mobilebandwidth/swiftest/internal/wire"
)

// MetricsRegistry aggregates operational metrics — counters, gauges and
// mergeable histograms with atomic, allocation-free updates. Share one
// registry between servers and tests to aggregate, expose it over HTTP with
// its Handler method (Prometheus text exposition, version 0.0.4), or take a
// programmatic Snapshot. A nil registry disables every update at the cost of
// one nil check.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Trace records the structured events of one bandwidth test (rate
// escalations, 50 ms samples, convergence checks, server additions) into a
// bounded ring. Dump it as a JSONL run-record with WriteJSONL. Event
// timestamps are the probe's elapsed time: virtual under SimulateTest, wall
// time under Test — the record schema is identical in both worlds.
type Trace = obs.Trace

// TraceEvent is one structured trace record.
type TraceEvent = obs.Event

// NewTrace returns a tracer bounded to capacity events; capacity ≤ 0 selects
// a default that holds every realistic test.
func NewTrace(capacity int) *Trace { return obs.NewTrace(capacity) }

// Tech identifies a mobile access technology.
type Tech = dataset.Tech

// Access technologies with calibrated bandwidth models.
const (
	Tech4G   = dataset.Tech4G
	Tech5G   = dataset.Tech5G
	TechWiFi = dataset.TechWiFi
)

// Model is a multi-modal Gaussian bandwidth model (Equation 1 of the paper):
// the statistical prior that seeds and steers Swiftest's probing.
type Model = gmm.Model

// ModelComponent is one Gaussian mode of a Model.
type ModelComponent = gmm.Component

// NewModel builds a bandwidth model from explicit modes.
func NewModel(components ...ModelComponent) (*Model, error) {
	return gmm.New(components...)
}

// FitModel estimates a bandwidth model from observed test results (Mbps)
// with EM and BIC model selection — the periodic model-refresh path of §5.1.
// kmax bounds the number of modes considered.
func FitModel(resultsMbps []float64, kmax int, seed int64) (*Model, error) {
	m, _, err := gmm.FitBIC(resultsMbps, kmax, rand.New(rand.NewSource(seed)), gmm.FitOptions{})
	return m, err
}

// DefaultModel returns the calibrated 2021 bandwidth model for a technology,
// derived from the paper's measurement study (Figures 16, 18, 19).
func DefaultModel(tech Tech) (*Model, error) {
	return dataset.TechModel(tech, 2021)
}

// SaveModel writes a bandwidth model to path as versioned JSON — how a
// deployment persists the periodically refreshed models of §5.1.
func SaveModel(path string, m *Model) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("swiftest: encoding model: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadModel reads a bandwidth model previously written by SaveModel.
func LoadModel(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("swiftest: reading model: %w", err)
	}
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Estimates is the protocol-v2 estimator family computed over a test's 50 ms
// samples: the paper's crossing estimate plus the trimmed-mean,
// sustained-peak and P90–P80 summaries. Every runner — live Test, emulated
// SimulateTest, the baselines — reports the same struct, so results are
// comparable across worlds.
type Estimates = estimate.Estimates

// BDPRegime classifies how a test's joint (bandwidth, RTT) trajectory
// evolved: slow-start, queue-buildup, shaping, stable, or unknown.
type BDPRegime = estimate.Regime

// BDP regime classifications.
const (
	RegimeUnknown      = estimate.RegimeUnknown
	RegimeSlowStart    = estimate.RegimeSlowStart
	RegimeQueueBuildup = estimate.RegimeQueueBuildup
	RegimeShaping      = estimate.RegimeShaping
	RegimeStable       = estimate.RegimeStable
)

// TrajectoryPoint is one joint (bandwidth, RTT) observation of a test's
// trajectory; RTT is zero when the runner has no RTT source.
type TrajectoryPoint = estimate.TrajectoryPoint

// Result is the outcome of one Swiftest bandwidth test.
type Result struct {
	// BandwidthMbps is the estimated downstream access bandwidth.
	BandwidthMbps float64
	// Duration is the probing time, excluding server selection.
	Duration time.Duration
	// SelectionTime is the PING-based server-selection time (zero for
	// emulated tests).
	SelectionTime time.Duration
	// DataMB is the data consumed by the test at the client.
	DataMB float64
	// Samples are the 50 ms bandwidth samples collected.
	Samples []float64
	// Converged reports whether the 3 % criterion stopped the test (false
	// means the deadline was hit and the trailing window was reported).
	Converged bool
	// RateChanges counts probing-rate escalations.
	RateChanges int
	// InitialRateMbps is the model-selected initial probing rate.
	InitialRateMbps float64
	// Jitter is the interarrival-jitter estimate of the probe stream
	// (RFC 3550 style), a free link-quality diagnostic. Zero for emulated
	// tests.
	Jitter time.Duration
	// ServersUsed counts the test servers that carried probe traffic.
	ServersUsed int
	// ServersLost counts servers that went silent mid-test and were failed
	// over away from.
	ServersLost int
	// Degraded reports that the test lost at least one server mid-flight
	// but finished on the survivors: the estimate is valid but was produced
	// under reduced pool capacity.
	Degraded bool
	// Estimates is the full estimator family over Samples; its crossing
	// figure equals BandwidthMbps.
	Estimates Estimates
	// Trajectory is the joint (bandwidth, RTT) evolution of the test; RTT
	// is zero where the probe had no RTT source.
	Trajectory []TrajectoryPoint
	// Regime classifies Trajectory by how the bandwidth-delay product
	// evolved — the Figure-17-style view of what bounded the test.
	Regime BDPRegime
	// ProtocolVersion is the negotiated wire generation of a live test
	// (2 for the two-channel protocol, 1 for legacy); zero for emulated
	// tests, which have no wire.
	ProtocolVersion uint8
}

func fromCore(r core.Result) Result {
	return Result{
		BandwidthMbps:   r.Bandwidth,
		Duration:        r.Duration,
		DataMB:          r.DataMB,
		Samples:         r.Samples,
		Converged:       r.Converged,
		RateChanges:     r.RateChanges,
		InitialRateMbps: r.InitialRate,
		ServersUsed:     r.ServersUsed,
		ServersLost:     r.ServersLost,
		Degraded:        r.Degraded,
		Estimates:       r.Estimates,
		Trajectory:      r.Trajectory,
		Regime:          r.Regime,
	}
}

// ServerOptions configures a Swiftest test server.
type ServerOptions struct {
	// UplinkMbps caps the server's aggregate probe egress; zero selects
	// 100 Mbps, the budget-VM class of §5.2.
	UplinkMbps float64
	// Logger receives operational events; nil disables logging.
	Logger *slog.Logger
	// OnResult receives each client-reported result (for model refresh).
	OnResult func(mbps float64)
	// Metrics, when non-nil, receives the server's operational metrics
	// (session lifecycle, pacing, drops, idle reaps).
	Metrics *MetricsRegistry
	// FaultPlan, when non-nil, makes the server act out the plan's faults:
	// drop handshakes, fall silent during blackouts, delay or duplicate
	// pongs, lose probe datagrams, clamp pacing. Fault times are elapsed
	// wall time since NewServer.
	FaultPlan *FaultPlan
	// FaultServer is this server's index in the fault plan's pool order
	// (Fault.Server). Only consulted when FaultPlan is non-nil.
	FaultServer int
	// Wire selects the server's send/receive syscall path. WireAuto (the
	// zero value) uses batched message syscalls plus UDP segmentation
	// offload where the kernel supports them; WireFallback forces the
	// portable one-datagram-per-syscall path. Both put byte-identical
	// datagram streams on the wire.
	Wire WireMode
	// AuthKey, when non-zero, requires protocol-v2 clients to present a
	// session token minted under this key (see MintAuthToken and the fleet
	// dispatcher's lease tokens). Legacy v1 clients carry no token field
	// and are always admitted.
	AuthKey uint64
}

// WireMode selects the syscall path probe datagrams take to the wire.
type WireMode = transport.WireMode

const (
	// WireAuto negotiates the fastest available path at startup.
	WireAuto = transport.WireAuto
	// WireFallback forces the portable single-message path.
	WireFallback = transport.WireFallback
)

// Server is a running Swiftest UDP test server.
type Server struct {
	inner *transport.Server
}

// NewServer starts a test server on addr (e.g. ":7007" or "127.0.0.1:0").
func NewServer(addr string, opts ServerOptions) (*Server, error) {
	var binding *faults.Binding
	if opts.FaultPlan != nil {
		if err := opts.FaultPlan.Validate(); err != nil {
			return nil, fmt.Errorf("swiftest: fault plan: %w", err)
		}
		binding = &faults.Binding{Inj: opts.FaultPlan.Injector(), Server: opts.FaultServer}
	}
	s, err := transport.NewServer(addr, transport.ServerConfig{
		UplinkMbps: opts.UplinkMbps,
		Logger:     opts.Logger,
		OnResult:   opts.OnResult,
		Metrics:    opts.Metrics,
		Faults:     binding,
		Wire:       opts.Wire,
		AuthKey:    opts.AuthKey,
	})
	if err != nil {
		return nil, err
	}
	return &Server{inner: s}, nil
}

// Addr reports the server's bound address ("host:port").
func (s *Server) Addr() string { return s.inner.Addr().String() }

// BytesSent reports cumulative probe bytes sent, for utilization accounting.
func (s *Server) BytesSent() int64 { return s.inner.BytesSent() }

// ActiveTests reports the number of in-flight tests.
func (s *Server) ActiveTests() int { return s.inner.ActiveSessions() }

// BlackedOut reports whether the server's fault plan has it blacked out
// right now. Fleet heartbeat loops gate beats on this so an injected
// blackout silences the control plane and the data plane together.
func (s *Server) BlackedOut() bool { return s.inner.BlackedOut() }

// Close stops the server.
func (s *Server) Close() error { return s.inner.Close() }

// ServerAddr names one test server available to a client.
type ServerAddr struct {
	Addr       string  // "host:port"
	UplinkMbps float64 // advertised egress capacity
}

// Protocol selects the client's wire-protocol policy for live tests.
type Protocol = transport.Protocol

const (
	// ProtoAuto negotiates v2 and falls back to v1 against legacy servers.
	ProtoAuto = transport.ProtoAuto
	// ProtoV1 pins the legacy single-socket protocol.
	ProtoV1 = transport.ProtoV1
	// ProtoV2 requires the two-channel protocol; legacy servers are an
	// error (wrapping ErrProtocolUnsupported).
	ProtoV2 = transport.ProtoV2
)

// ParseProtocol maps a flag value ("auto", "v1", "v2", "1", "2", "") to a
// Protocol.
func ParseProtocol(s string) (Protocol, error) { return transport.ParseProtocol(s) }

// AuthToken authenticates a v2 test session against a keyed deployment: the
// fleet dispatcher mints one per lease (MintAuthToken) and the client
// presents it at session setup.
type AuthToken = wire.Token

// MintAuthToken authenticates (server, seq) under the deployment key — what
// the fleet dispatcher does per lease. The token never expires; keyed
// fleets that bound lease lifetimes mint with MintAuthTokenExpiring (or set
// FleetConfig.TokenTTL). Self-serve clients of an open (unkeyed) deployment
// never need one.
func MintAuthToken(key uint64, server uint32, seq uint64) AuthToken {
	return wire.MintToken(key, server, seq, 0)
}

// MintAuthTokenExpiring authenticates (server, seq) under the deployment
// key until the expires instant, after which servers reject the token at
// session setup. The MAC covers the deadline, so holders cannot extend it.
// A zero expires time mints a non-expiring token.
func MintAuthTokenExpiring(key uint64, server uint32, seq uint64, expires time.Time) AuthToken {
	var ms uint64
	if !expires.IsZero() {
		ms = uint64(expires.UnixMilli())
	}
	return wire.MintToken(key, server, seq, ms)
}

// ParseAuthToken decodes the hex form produced by AuthToken.String — the
// shape tokens travel in through dispatch responses and CLI flags.
func ParseAuthToken(s string) (AuthToken, error) { return wire.ParseToken(s) }

// SessionOptions is the observability and resilience configuration shared by
// every test runner — live (TestOptions) and emulated (SimulateOptions)
// alike. The zero value disables all of it.
type SessionOptions struct {
	// Trace, when non-nil, receives the structured events of this test for
	// a JSONL run-record (see Trace).
	Trace *Trace
	// Metrics, when non-nil, aggregates engine outcomes (convergence,
	// duration, data volume, bandwidth) across tests — plus the client's
	// resilience counters (sessions lost, handshake retries).
	Metrics *MetricsRegistry
	// LostAfter is K, the consecutive silent 50 ms sample windows after
	// which an assigned server session is declared lost and its probing
	// share redistributed to the surviving servers. Zero selects the
	// default (4 windows, i.e. 200 ms of silence).
	LostAfter int
	// Faults, when non-nil, is a validated fault-injection plan acted out
	// against the test. Only the emulated runners accept one: a live
	// TestContext rejects a non-nil plan, because real servers inject
	// their own faults via ServerOptions.FaultPlan.
	Faults *FaultPlan
	// Terminate selects the termination policy deciding when the test has
	// measured enough: CrossingTermination (the paper's §5.1 rule, the
	// default), FastBTSTermination, or EarlyStopTermination (the learned
	// model). Nil selects the crossing rule.
	Terminate TerminationPolicy
}

// TestOptions configures a client-side bandwidth test.
type TestOptions struct {
	// SessionOptions carries the trace, metrics, and resilience knobs
	// shared with the emulated runners. Faults must be nil on live tests.
	SessionOptions
	// Servers is the candidate test-server pool. Required.
	Servers []ServerAddr
	// Model is the bandwidth model for the client's access technology.
	// Required; use DefaultModel or FitModel.
	Model *Model
	// PingCount is the number of latency probes per server during
	// selection; zero selects 3.
	PingCount int
	// PingTimeout bounds each selection probe; zero selects 1 s.
	PingTimeout time.Duration
	// MaxDuration bounds the probing phase; zero selects 5 s.
	MaxDuration time.Duration
	// Seed drives test-ID generation; zero derives one from the clock.
	Seed int64
	// Protocol is the wire-protocol policy; the zero value (ProtoAuto)
	// negotiates v2 with v1 fallback.
	Protocol Protocol
	// Token authenticates the session against a keyed deployment (see
	// AuthToken). Leave zero for open deployments.
	Token AuthToken
	// RegimeHint feeds the BDP-regime classifier back into the engine as a
	// convergence hint: a trajectory already classified as stable may end
	// the test one window early. Off by default.
	RegimeHint bool
}

// Test runs one full Swiftest bandwidth test over real UDP: server selection
// by PING latency, data-driven probing, convergence, and result reporting
// back to the servers. It is TestContext with a background context.
func Test(opts TestOptions) (Result, error) {
	return TestContext(context.Background(), opts)
}

// TestContext is Test bounded by a context: cancellation or deadline expiry
// aborts server selection, session setup, and the probing loop at the next
// sample boundary, returning an error wrapping ErrTestAborted. A context
// that is already done aborts before a single datagram is sent.
func TestContext(ctx context.Context, opts TestOptions) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("swiftest: %w before start: %w", ErrTestAborted, err)
	}
	if len(opts.Servers) == 0 {
		return Result{}, fmt.Errorf("swiftest: %w", ErrNoServers)
	}
	if opts.Model == nil {
		return Result{}, fmt.Errorf("swiftest: %w (see DefaultModel)", ErrModelRequired)
	}
	if opts.Faults != nil {
		return Result{}, fmt.Errorf("swiftest: fault plans apply to emulated tests and fault-injecting servers, not the live client; set ServerOptions.FaultPlan or use SimulateTest")
	}
	pingCount := opts.PingCount
	if pingCount <= 0 {
		pingCount = 3
	}
	pingTimeout := opts.PingTimeout
	if pingTimeout <= 0 {
		pingTimeout = time.Second
	}
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano() //lint:allow walltime entropy for live test IDs; experiments pass explicit seeds
	}

	pool := &transport.ServerPool{}
	for _, s := range opts.Servers {
		pool.Servers = append(pool.Servers, transport.PoolServer{Addr: s.Addr, UplinkMbps: s.UplinkMbps})
	}
	selStart := time.Now() //lint:allow walltime measures real server-selection latency in the live client path
	if err := pool.RankByLatencyContext(ctx, pingCount, pingTimeout); err != nil {
		return Result{}, fmt.Errorf("swiftest: server selection: %w", err)
	}
	selectionTime := time.Since(selStart) //lint:allow walltime measures real server-selection latency in the live client path

	probe, err := transport.NewUDPProbeContext(ctx, pool, rand.New(rand.NewSource(seed)))
	if err != nil {
		return Result{}, fmt.Errorf("swiftest: preparing probe: %w", err)
	}
	probe.SetMetrics(opts.Metrics)
	probe.SetLostAfter(opts.LostAfter)
	probe.SetProtocol(opts.Protocol)
	probe.SetToken(opts.Token)
	if opts.Trace != nil {
		opts.Trace.SetMeta("source", "udp")
		opts.Trace.SetMeta("test_id", strconv.FormatUint(probe.TestID(), 10))
		opts.Trace.SetMeta("started_unix_ms", strconv.FormatInt(time.Now().UnixMilli(), 10)) //lint:allow walltime run-record start stamp for correlating live tests with server logs
		probe.SetTrace(opts.Trace)
	}
	res, err := core.RunContext(ctx, probe, core.Config{
		Model:       opts.Model,
		MaxDuration: opts.MaxDuration,
		Trace:       opts.Trace,
		Metrics:     core.NewEngineMetrics(opts.Metrics),
		RegimeHint:  opts.RegimeHint,
		Terminate:   opts.Terminate,
	})
	jitter := probe.Jitter()
	probe.SetFinalReport(res.Estimates, res.Regime)
	probe.Finish(res.Bandwidth, res.Duration)
	if err != nil {
		return Result{}, fmt.Errorf("swiftest: probing: %w", err)
	}
	out := fromCore(res)
	out.SelectionTime = selectionTime
	out.Jitter = jitter
	out.ProtocolVersion = probe.NegotiatedVersion()
	return out, nil
}

// PingOptions configures a latency probe train against one test server.
// The zero value (beyond Addr) selects the same defaults server selection
// uses: 3 probes, 1 s apiece.
type PingOptions struct {
	// Addr is the server to probe ("host:port"). Required.
	Addr string
	// Count is the number of probes; the minimum RTT across them is
	// reported. Zero selects 3.
	Count int
	// Timeout bounds each probe; zero selects 1 s.
	Timeout time.Duration
}

// PingServer measures the minimum round-trip latency to one test server.
// Cancellation or deadline expiry on ctx cuts the probe train short.
// Failures wrap ErrProbeTimeout (no answer) or ErrTestAborted (cancelled)
// inside a *ServerError naming the address.
func PingServer(ctx context.Context, opts PingOptions) (time.Duration, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	count := opts.Count
	if count <= 0 {
		count = 3
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = time.Second
	}
	return transport.PingServerContext(ctx, opts.Addr, count, timeout)
}

// Ping measures the minimum round-trip latency to one test server.
//
// Deprecated: use PingServer, which names its parameters and defaults them.
func Ping(addr string, count int, timeout time.Duration) (time.Duration, error) {
	return transport.PingServer(addr, count, timeout)
}

// PingContext is Ping bounded by a context: cancellation or deadline expiry
// cuts the probe train short.
//
// Deprecated: use PingServer.
func PingContext(ctx context.Context, addr string, count int, timeout time.Duration) (time.Duration, error) {
	return transport.PingServerContext(ctx, addr, count, timeout)
}

// ModelStore maintains a bandwidth model refreshed periodically from
// reported test results — the §5.1 model-refresh pipeline. Feed it from
// ServerOptions.OnResult and serve Model() to clients.
type ModelStore = core.ModelStore

// RefreshConfig parameterises a ModelStore.
type RefreshConfig = core.RefreshConfig

// NewModelStore returns a store seeded with an initial model (typically
// DefaultModel for the deployment's dominant technology).
func NewModelStore(seed *Model, cfg RefreshConfig) (*ModelStore, error) {
	return core.NewModelStore(seed, cfg)
}
