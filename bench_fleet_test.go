// Emitter for BENCH_fleet.json: a machine-readable record of the fleet
// control plane's dispatch throughput and the load generator's virtual-time
// leverage. Gated on BENCH_FLEET_OUT so regular `go test ./...` runs never
// pay for it:
//
//	BENCH_FLEET_OUT=BENCH_fleet.json go test -run TestEmitBenchFleet .
//
// The headline figure is the virtual-time speedup: how many seconds of
// emulated fleet operation (diurnal arrivals, heartbeats, admission,
// link emulation for every session) one wall-clock second buys.
package swiftest_test

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/mobilebandwidth/swiftest/internal/deploy"
	"github.com/mobilebandwidth/swiftest/internal/fleet"
	"github.com/mobilebandwidth/swiftest/internal/loadgen"
)

type benchFleetReport struct {
	Schema string `json:"schema"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	Note   string `json:"note"`

	// Dispatch hot path: one admission decision (rank, token, lease) plus
	// the matching release, on a 3-tier planner fleet.
	DispatchNsPerOp      float64 `json:"dispatch_ns_per_op"`
	DispatchPerSec       float64 `json:"dispatch_per_sec"`
	DispatchFleetServers int     `json:"dispatch_fleet_servers"`

	// Load generation: a full diurnal day compressed into the virtual
	// horizon, thousands of concurrent emulated clients.
	LoadgenPeakConcurrent  int     `json:"loadgen_peak_concurrent"`
	LoadgenVirtualSeconds  float64 `json:"loadgen_virtual_seconds"`
	LoadgenWallSeconds     float64 `json:"loadgen_wall_seconds"`
	LoadgenVirtualSpeedup  float64 `json:"loadgen_virtual_speedup"`
	LoadgenTestsCompleted  int     `json:"loadgen_tests_completed"`
	LoadgenTestsPerWallSec float64 `json:"loadgen_tests_per_wall_sec"`
}

func benchFleetPlan(t *testing.T, requiredMbps float64) (deploy.Plan, []deploy.Placement) {
	t.Helper()
	plan, err := deploy.PlanPurchase(deploy.SyntheticCatalogue(), requiredMbps, 0.075,
		deploy.PlanOptions{MinServers: 3})
	if err != nil {
		t.Fatal(err)
	}
	placements, err := deploy.PlaceServers(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	return plan, placements
}

// TestEmitBenchFleet measures dispatch and loadgen throughput and writes
// BENCH_fleet.json.
func TestEmitBenchFleet(t *testing.T) {
	out := os.Getenv("BENCH_FLEET_OUT")
	if out == "" {
		t.Skip("set BENCH_FLEET_OUT=<path> to emit the benchmark report")
	}

	plan, placements := benchFleetPlan(t, 5500)
	disp := testing.Benchmark(func(b *testing.B) {
		// A fresh dispatcher per invocation: testing.Benchmark re-runs this
		// closure with growing b.N, and virtual time must restart with it.
		d, err := fleet.NewDispatcher(plan, placements, fleet.Config{
			ActivatePlanned: true,
			PerTestMbps:     1,
			Seed:            7,
		})
		if err != nil {
			b.Fatal(err)
		}
		// Virtual time advances 5ms per decision so the token buckets
		// refill; Advance amortises to one window fold per ~100 iterations.
		r := d.Registry()
		n := len(r.Servers())
		b.ResetTimer()
		at := time.Duration(0)
		for i := 0; i < b.N; i++ {
			at += 5 * time.Millisecond
			for id := 0; id < n; id++ {
				_ = r.Heartbeat(id, at)
			}
			r.Advance(at)
			a, err := d.Dispatch(fleet.ClientInfo{Key: uint64(i), Domain: deploy.IXPDomains[i%8]}, at)
			if err != nil {
				b.Fatal(err)
			}
			r.Release(a.Lease, at)
		}
	})
	dispatchNs := float64(disp.T.Nanoseconds()) / float64(disp.N)

	const (
		peak       = 5200
		virtualDur = 30 * time.Second
	)
	var rep loadgen.Report
	lg := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			rep, err = loadgen.Run(context.Background(), loadgen.Config{
				Plan:           plan,
				Placements:     placements,
				Duration:       virtualDur,
				PeakConcurrent: peak,
				PerTestMbps:    1,
				Workers:        runtime.NumCPU(),
				Seed:           42,
				BurstProb:      -1,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	wallSec := lg.T.Seconds() / float64(lg.N)

	report := benchFleetReport{
		Schema: "swiftest-bench-fleet/v1",
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Note: "dispatch: admission+release on the planner's 3-tier fleet; " +
			"loadgen: one diurnal day compressed into 30 virtual seconds at " +
			"5200 peak concurrent emulated clients",
		DispatchNsPerOp:        dispatchNs,
		DispatchPerSec:         1e9 / dispatchNs,
		DispatchFleetServers:   plan.Servers(),
		LoadgenPeakConcurrent:  rep.PeakConcurrent,
		LoadgenVirtualSeconds:  virtualDur.Seconds(),
		LoadgenWallSeconds:     wallSec,
		LoadgenVirtualSpeedup:  virtualDur.Seconds() / wallSec,
		LoadgenTestsCompleted:  rep.TestsCompleted,
		LoadgenTestsPerWallSec: float64(rep.TestsCompleted) / wallSec,
	}

	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("dispatch %.0f ns/op (%.0f/s), loadgen %.1f× virtual speedup, %d tests completed",
		report.DispatchNsPerOp, report.DispatchPerSec, report.LoadgenVirtualSpeedup, report.LoadgenTestsCompleted)
}
