package swiftest

import "github.com/mobilebandwidth/swiftest/internal/errdefs"

// Structured error vocabulary. Every error returned by Test, TestContext,
// Ping, PingContext and SimulateTest wraps one of these sentinels (match
// with errors.Is) or a *ServerError (match with errors.As), so callers can
// dispatch on the failure class without string matching.
var (
	// ErrNoServers reports a test request with an empty server pool.
	ErrNoServers = errdefs.ErrNoServers
	// ErrNoReachableServer reports that server selection pinged every
	// candidate and none answered.
	ErrNoReachableServer = errdefs.ErrNoReachableServer
	// ErrModelRequired reports a test request without a bandwidth model.
	ErrModelRequired = errdefs.ErrModelRequired
	// ErrProbeTimeout reports a latency probe that saw no pong within its
	// deadline.
	ErrProbeTimeout = errdefs.ErrProbeTimeout
	// ErrTestAborted reports a test cancelled by its context (cancellation
	// or deadline) before completing.
	ErrTestAborted = errdefs.ErrTestAborted
	// ErrFleetSaturated reports that the dispatch control plane admitted no
	// server: every live server is at its session cap or out of admission
	// tokens. Match the wrapping *SaturatedError with errors.As for the
	// retry-after hint.
	ErrFleetSaturated = errdefs.ErrFleetSaturated
	// ErrProtocolUnsupported reports that TestOptions.Protocol pinned a wire
	// generation the server pool cannot speak (ProtoV2 against legacy
	// servers).
	ErrProtocolUnsupported = errdefs.ErrProtocolUnsupported
	// ErrAuthRejected reports that a keyed server refused the session token
	// (missing, forged, or minted under a different deployment key; see
	// TestOptions.Token and ServerOptions.AuthKey).
	ErrAuthRejected = errdefs.ErrAuthRejected
)

// SaturatedError is the structured form of ErrFleetSaturated: the dispatcher
// rejected a test and suggests when admission capacity should be back.
type SaturatedError = errdefs.SaturatedError

// ServerError attributes a failure to one test server: which address, and
// which protocol operation ("ping", "handshake", "dial", ...) was in
// flight. It wraps the underlying cause, so errors.Is still matches the
// sentinel and errors.As recovers the address.
type ServerError = errdefs.ServerError
