// Emitter for BENCH_earlystop.json: the paired accuracy-vs-duration-vs-data
// front of the learned early-termination policy versus the §5.1 crossing
// baseline. Every point runs on identical seeded links (profile × fault
// plan × run) against fault-free flooding ground truth, so the deltas
// measure the policy alone. Gated on BENCH_EARLYSTOP_OUT so regular
// `go test ./...` runs never pay for it:
//
//	BENCH_EARLYSTOP_OUT=BENCH_earlystop.json go test -run TestEmitBenchEarlystop .
package swiftest_test

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"github.com/mobilebandwidth/swiftest/internal/earlystop"
)

type benchEarlystopReport struct {
	Schema string `json:"schema"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	Note   string `json:"note"`

	// Front is the paired evaluation: crossing first, then the earlystop
	// policy at the default model's threshold and the swept extras.
	Front *earlystop.EvalReport `json:"front"`

	// The acceptance deltas of the default-threshold point versus crossing
	// (positive accuracy delta and negative duration/data deltas mean the
	// learned policy wins on every axis).
	AccuracyDelta   float64 `json:"accuracy_delta"`
	DurationRatio   float64 `json:"duration_ratio"`
	DataRatio       float64 `json:"data_ratio"`
	WallSeconds     float64 `json:"wall_seconds"`
	PairedTestsPerS float64 `json:"paired_tests_per_sec"`
}

// TestEmitBenchEarlystop traces the full paired front over the whole RAN
// profile library and writes BENCH_earlystop.json.
func TestEmitBenchEarlystop(t *testing.T) {
	out := os.Getenv("BENCH_EARLYSTOP_OUT")
	if out == "" {
		t.Skip("set BENCH_EARLYSTOP_OUT=<path> to emit the benchmark report")
	}

	cfg := earlystop.EvalConfig{
		Runs:       3,
		Seed:       1,
		Thresholds: []float64{0.7, 0.75, 0.85, 0.9},
	}
	var rep *earlystop.EvalReport
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			rep, err = earlystop.Evaluate(context.Background(), cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	wallSec := res.T.Seconds() / float64(res.N)

	crossing, learned := rep.Points[0], rep.Points[1]
	if learned.MeanAccuracy < crossing.MeanAccuracy {
		t.Errorf("earlystop accuracy %.3f below crossing %.3f — default model regressed",
			learned.MeanAccuracy, crossing.MeanAccuracy)
	}
	if learned.MeanDurationMS >= crossing.MeanDurationMS || learned.MeanDataMB >= crossing.MeanDataMB {
		t.Errorf("earlystop cost (%.0f ms, %.1f MB) not below crossing (%.0f ms, %.1f MB)",
			learned.MeanDurationMS, learned.MeanDataMB, crossing.MeanDurationMS, crossing.MeanDataMB)
	}

	paired := 0
	for _, p := range rep.Points {
		paired += p.Runs
	}
	report := benchEarlystopReport{
		Schema: "swiftest-bench-earlystop/v1",
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Note: "full RAN profile library x builtin fault plans, every policy on " +
			"identical seeded links vs fault-free flooding ground truth",
		Front:           rep,
		AccuracyDelta:   learned.MeanAccuracy - crossing.MeanAccuracy,
		DurationRatio:   learned.MeanDurationMS / crossing.MeanDurationMS,
		DataRatio:       learned.MeanDataMB / crossing.MeanDataMB,
		WallSeconds:     wallSec,
		PairedTestsPerS: float64(paired) / wallSec,
	}

	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("earlystop front: Δaccuracy %+.3f, duration ×%.2f, data ×%.2f over %d paired runs",
		report.AccuracyDelta, report.DurationRatio, report.DataRatio, learned.Runs)
}
