package swiftest

import (
	"context"

	"github.com/mobilebandwidth/swiftest/internal/exper"
	"github.com/mobilebandwidth/swiftest/internal/ranprofile"
)

// Profile is a named multi-state RAN scenario: a seeded Markov chain over
// link states (good / fade / handover / sleep / congested), each carrying
// the capacity, RTT, loss and jitter the emulated access link applies while
// the state holds. Leaving the handover state swaps the cell — capacity and
// RTT durably change mid-test. A (profile, seed) pair replays
// byte-identically. See SimulateOptions.Profile and RunCampaign.
type Profile = ranprofile.Profile

// ProfileState is one link state of a Profile.
type ProfileState = ranprofile.State

// Profiles lists the built-in RAN scenario library, sorted by name:
// 4G/5G static and drive scenarios, congested WiFi, elevators, subways,
// rural LTE and more.
func Profiles() []string { return ranprofile.Names() }

// LookupProfile returns a built-in RAN profile by name.
func LookupProfile(name string) (*Profile, error) { return ranprofile.Get(name) }

// ParseProfiles loads a custom profile library from JSON (the same schema
// as the embedded library: {"version": 1, "profiles": [...]}).
func ParseProfiles(data []byte) ([]*Profile, error) { return ranprofile.Parse(data) }

// CampaignConfig parameterises a scenario campaign: the cross product of
// RAN profiles × termination algorithms × fault plans, each cell measured
// under several seeds, fully in virtual time.
type CampaignConfig = exper.CampaignConfig

// CampaignReport is the deterministic outcome of a campaign
// (swiftest-campaign-report/v1): byte-identical across reruns and worker
// counts for a fixed seed.
type CampaignReport = exper.CampaignReport

// CampaignScenario is one aggregated (profile, algorithm, fault plan) cell
// of a campaign report.
type CampaignScenario = exper.ScenarioStats

// NamedFaultPlan pairs a display name with a fault plan applied to the
// emulated access link for every algorithm in a campaign cell.
type NamedFaultPlan = exper.NamedFaultPlan

// BuiltinFaultPlans returns the standard campaign fault plans: a
// fault-free control, a mid-test burst-loss episode, and a short access
// blackout.
func BuiltinFaultPlans() []NamedFaultPlan { return exper.BuiltinFaultPlans() }

// RunCampaign sweeps RAN profiles × termination algorithms × fault plans
// and reports per-scenario accuracy (against flooding ground truth on the
// identical link), duration, and data cost. The `swiftest campaign` CLI
// subcommand is a thin wrapper over this.
func RunCampaign(ctx context.Context, cfg CampaignConfig) (*CampaignReport, error) {
	return exper.RunCampaign(ctx, cfg)
}
